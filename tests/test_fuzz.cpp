// Property-based sweep over randomly generated (but always valid) models:
// for every seed, the simulator must preserve the repository's core
// invariants — bit-exact determinism across machine shapes and transports,
// spike conservation, and series consistency. This is the broadest net for
// subtle semantic regressions in the core/runtime/transport stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "arch/crossbar.h"
#include "arch/model.h"
#include "comm/mpi_transport.h"
#include "comm/pgas_transport.h"
#include "resilience/checkpoint.h"
#include "runtime/compass.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/prng.h"

namespace compass {
namespace {

using arch::CoreId;
using arch::Tick;
using TraceEvent = std::tuple<Tick, CoreId, unsigned>;

/// Generate a random, fully valid model: random crossbar density, random
/// neuron parameters across the whole legal envelope (all reset modes, all
/// stochastic flag combinations), random targets/delays, random potentials.
arch::Model random_model(std::uint64_t seed, std::size_t cores = 12) {
  util::CorePrng prng(util::derive_seed(seed, 0xF022));
  arch::Model model(cores, seed);

  for (CoreId c = 0; c < cores; ++c) {
    arch::NeurosynapticCore& core = model.core(c);
    const std::uint8_t density_p8 =
        static_cast<std::uint8_t>(16 + prng.uniform_below(64));  // 6..31%
    for (unsigned a = 0; a < arch::kAxonsPerCore; ++a) {
      core.set_axon_type(a, static_cast<std::uint8_t>(prng.uniform_below(4)));
      for (unsigned j = 0; j < arch::kNeuronsPerCore; ++j) {
        if (prng.bernoulli_8(density_p8)) core.set_synapse(a, j);
      }
    }
    for (unsigned j = 0; j < arch::kNeuronsPerCore; ++j) {
      arch::NeuronParams p;
      for (auto& w : p.weights) {
        w = static_cast<std::int16_t>(
            static_cast<int>(prng.uniform_below(41)) - 20);
      }
      p.leak = static_cast<std::int16_t>(
          static_cast<int>(prng.uniform_below(41)) - 30);  // biased to drive
      p.threshold = 1 + static_cast<std::int32_t>(prng.uniform_below(128));
      p.reset_value = -static_cast<std::int32_t>(prng.uniform_below(32));
      p.floor = -64 - static_cast<std::int32_t>(prng.uniform_below(256));
      p.reset_mode = static_cast<arch::ResetMode>(prng.uniform_below(3));
      p.flags = static_cast<std::uint8_t>(prng.uniform_below(8));
      p.threshold_mask_bits = static_cast<std::uint8_t>(prng.uniform_below(7));
      const arch::AxonTarget target{
          static_cast<CoreId>(prng.uniform_below(static_cast<std::uint32_t>(cores))),
          static_cast<std::uint8_t>(prng.uniform_below(256)),
          static_cast<std::uint8_t>(1 + prng.uniform_below(15))};
      core.configure_neuron(j, p, target);
      core.set_potential(j, static_cast<std::int32_t>(prng.uniform_below(
                                static_cast<std::uint32_t>(p.threshold))));
    }
  }
  model.reseed_cores();
  EXPECT_EQ(model.validate(), "");
  return model;
}

struct RunResult {
  std::vector<TraceEvent> trace;
  runtime::RunReport report;
};

RunResult run(const arch::Model& model, int ranks, int threads,
              bool pgas, Tick ticks) {
  arch::Model copy = model;
  const runtime::Partition part =
      runtime::Partition::uniform(copy.num_cores(), ranks, threads);
  std::unique_ptr<comm::Transport> transport;
  if (pgas) {
    transport = std::make_unique<comm::PgasTransport>(ranks, comm::CommCostModel{});
  } else {
    transport = std::make_unique<comm::MpiTransport>(ranks, comm::CommCostModel{});
  }
  runtime::Compass sim(copy, part, *transport);
  RunResult out;
  sim.set_spike_hook([&](Tick t, CoreId c, unsigned j) {
    out.trace.emplace_back(t, c, j);
  });
  out.report = sim.run(ticks);
  return out;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, DeterminismAcrossShapesAndTransports) {
  const arch::Model model = random_model(GetParam());
  const RunResult reference = run(model, 1, 1, /*pgas=*/false, 25);
  ASSERT_FALSE(reference.trace.empty())
      << "fuzz model should be active (drive-biased leak)";

  for (const auto& [ranks, threads, pgas] :
       {std::tuple{2, 1, false}, std::tuple{5, 3, false},
        std::tuple{2, 1, true}, std::tuple{12, 2, true}}) {
    const RunResult got = run(model, ranks, threads, pgas, 25);
    ASSERT_EQ(got.trace, reference.trace)
        << "seed=" << GetParam() << " ranks=" << ranks
        << " threads=" << threads << " pgas=" << pgas;
    EXPECT_EQ(got.report.fired_spikes, reference.report.fired_spikes);
    EXPECT_EQ(got.report.routed_spikes, reference.report.routed_spikes);
  }
}

TEST_P(FuzzSweep, SpikeConservation) {
  const arch::Model model = random_model(GetParam());
  const RunResult r = run(model, 4, 2, /*pgas=*/false, 25);
  EXPECT_EQ(r.report.routed_spikes,
            r.report.local_spikes + r.report.remote_spikes);
  // Every fired neuron in a fuzz model has a target.
  EXPECT_EQ(r.report.routed_spikes, r.report.fired_spikes);
}

TEST_P(FuzzSweep, RepeatRunsIdentical) {
  const arch::Model model = random_model(GetParam());
  const RunResult a = run(model, 3, 2, /*pgas=*/true, 20);
  const RunResult b = run(model, 3, 2, /*pgas=*/true, 20);
  EXPECT_EQ(a.trace, b.trace);
}

TEST_P(FuzzSweep, CheckpointMidRunResumesExactly) {
  const arch::Model model = random_model(GetParam());
  const RunResult full = run(model, 2, 1, false, 30);

  arch::Model first = model;
  const runtime::Partition part = runtime::Partition::uniform(first.num_cores(), 2, 1);
  comm::MpiTransport t1(2, comm::CommCostModel{});
  runtime::Compass sim1(first, part, t1);
  std::vector<TraceEvent> trace;
  sim1.set_spike_hook([&](Tick t, CoreId c, unsigned j) {
    trace.emplace_back(t, c, j);
  });
  sim1.run(13);  // odd split on purpose

  std::stringstream snapshot;
  first.save(snapshot);
  arch::Model resumed = arch::Model::load(snapshot);
  comm::MpiTransport t2(2, comm::CommCostModel{});
  runtime::Compass sim2(resumed, part, t2);
  sim2.set_start_tick(13);
  sim2.set_spike_hook([&](Tick t, CoreId c, unsigned j) {
    trace.emplace_back(t, c, j);
  });
  sim2.run(17);

  EXPECT_EQ(trace, full.trace);
}

TEST_P(FuzzSweep, MangledCheckpointBytesAreAlwaysRejectedTyped) {
  // Serialize a real checkpoint, then attack it with PRNG-driven byte
  // flips, truncations, and appended garbage. Every mangled buffer must be
  // rejected with a typed CheckpointError — never accepted, never undefined
  // behaviour (this test is part of the asan-ubsan gate).
  arch::Model model = random_model(GetParam(), /*cores=*/4);
  const runtime::Partition part =
      runtime::Partition::uniform(model.num_cores(), 2, 1);
  comm::MpiTransport transport(2, comm::CommCostModel{});
  runtime::Compass sim(model, part, transport);
  sim.run(7);
  const std::string good =
      resilience::serialize_checkpoint(resilience::capture(sim, model));
  ASSERT_NO_THROW(resilience::parse_checkpoint(good));

  util::CorePrng prng(util::derive_seed(GetParam(), 0xC0FF));
  for (int round = 0; round < 64; ++round) {
    std::string bad = good;
    switch (prng.uniform_below(4)) {
      case 0: {  // flip 1..4 random bytes
        const int flips = 1 + static_cast<int>(prng.uniform_below(4));
        for (int f = 0; f < flips; ++f) {
          const std::size_t pos = static_cast<std::size_t>(
              prng.uniform_below(static_cast<std::uint32_t>(bad.size())));
          bad[pos] = static_cast<char>(
              bad[pos] ^ static_cast<char>(1 + prng.uniform_below(255)));
        }
        break;
      }
      case 1:  // truncate to a random prefix
        bad.resize(prng.uniform_below(
            static_cast<std::uint32_t>(bad.size())));
        break;
      case 2: {  // splice random garbage over a random span
        const std::size_t pos = static_cast<std::size_t>(
            prng.uniform_below(static_cast<std::uint32_t>(bad.size())));
        const std::size_t len = std::min<std::size_t>(
            1 + prng.uniform_below(64), bad.size() - pos);
        for (std::size_t i = 0; i < len; ++i) {
          bad[pos + i] = static_cast<char>(prng.uniform_below(256));
        }
        break;
      }
      default:  // swap the declared tick/section-count region wholesale
        for (std::size_t i = 8; i < 20 && i < bad.size(); ++i) {
          bad[i] = static_cast<char>(~bad[i]);
        }
        break;
    }
    if (bad == good) continue;
    EXPECT_THROW(resilience::parse_checkpoint(bad),
                 resilience::CheckpointError)
        << "seed=" << GetParam() << " round=" << round
        << " size=" << bad.size();
  }
}

TEST_P(FuzzSweep, CrossbarColumnMirrorStaysTransposed) {
  // The bit-parallel synapse kernel reads the crossbar's column-major
  // mirror; a single stale bit there silently corrupts accumulators. Attack
  // the invariant with a long random interleaving of every mutation path —
  // single-bit set, single-bit clear, whole-row overwrite, full clear — and
  // then require (a) the mirror equals the transpose recomputed from the
  // authoritative rows, bit for bit, and (b) the O(1) synapse_count()
  // matches both the row population sum and the column population sum.
  util::CorePrng prng(util::derive_seed(GetParam(), 0x7A35));
  arch::Crossbar xb;
  for (int op = 0; op < 6000; ++op) {
    const unsigned axon = prng.uniform_below(arch::kAxonsPerCore);
    const unsigned neuron = prng.uniform_below(arch::kNeuronsPerCore);
    switch (prng.uniform_below(8)) {
      case 0:
        xb.set(axon, neuron, false);
        break;
      case 1: {  // whole-row overwrite with a random (often sparse) row
        util::Bits256 row;
        for (auto& w : row.w) w = prng.next_u64() & prng.next_u64();
        xb.set_row(axon, row);
        break;
      }
      case 2:
        if (prng.uniform_below(128) == 0) xb.clear();
        break;
      default:
        xb.set(axon, neuron, true);
        break;
    }
  }

  std::uint64_t row_bits = 0, col_bits = 0;
  std::array<util::Bits256, arch::kNeuronsPerCore> transpose{};
  for (unsigned a = 0; a < arch::kAxonsPerCore; ++a) {
    row_bits += static_cast<std::uint64_t>(xb.row(a).popcount());
    util::for_each_set_bit(xb.row(a),
                           [&](unsigned j) { transpose[j].set(a); });
  }
  for (unsigned j = 0; j < arch::kNeuronsPerCore; ++j) {
    col_bits += static_cast<std::uint64_t>(xb.col(j).popcount());
    ASSERT_TRUE(xb.col(j) == transpose[j])
        << "stale column mirror: seed=" << GetParam() << " neuron=" << j;
  }
  EXPECT_EQ(xb.synapse_count(), row_bits) << "seed=" << GetParam();
  EXPECT_EQ(xb.synapse_count(), col_bits) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------------------------------------------------------------------------
// Serve-protocol fuzz (`ctest -L serve`): malformed frames must yield typed
// errors and the daemon must keep serving — never crash, never wedge. Each
// test proves liveness afterwards by completing a fresh session RPC.

struct ServeFuzzHarness {
  ServeFuzzHarness() {
    serve::ServerOptions opts;
    opts.bind = "127.0.0.1";
    opts.port = 0;
    server = std::make_unique<serve::Server>(opts);
    dispatcher = std::thread([this] { server->run(); });
  }
  ~ServeFuzzHarness() { stop(); }
  void stop() {
    if (dispatcher.joinable()) {
      server->request_stop();
      dispatcher.join();
    }
  }
  /// A full create→close RPC round-trip on a fresh connection: the daemon is
  /// alive and has drained earlier socket events (every ready fd is serviced
  /// in the same poll cycle, and the attacker's EOF was ready first).
  void assert_alive() {
    serve::Client probe;
    probe.connect("127.0.0.1", server->port());
    const std::uint32_t sid = probe.create_session("tiny", 1);
    probe.close_session(sid);
  }

  std::unique_ptr<serve::Server> server;
  std::thread dispatcher;
};

TEST(ServeFuzz, TruncatedFrameCountsAsProtocolError) {
  ServeFuzzHarness harness;
  {
    serve::Client attacker;
    attacker.connect("127.0.0.1", harness.server->port());
    // A length prefix declaring 100 bytes, then hang up after 4: the daemon
    // sees EOF mid-frame.
    std::vector<std::uint8_t> wire;
    serve::put_u32(wire, 100);
    serve::put_u32(wire, 0xDEAD);
    attacker.send_raw(wire.data(), wire.size());
    attacker.close();
  }
  harness.assert_alive();
  harness.stop();
  EXPECT_GE(harness.server->stats().protocol_errors, 1u);
}

TEST(ServeFuzz, OversizedFrameGetsTypedErrorAndClose) {
  ServeFuzzHarness harness;
  serve::Client attacker;
  attacker.connect("127.0.0.1", harness.server->port());
  std::vector<std::uint8_t> wire;
  serve::put_u32(wire, 0xFFFFFFFFu);  // 4 GiB "payload"
  serve::put_u32(wire, 0);            // past the probe threshold
  attacker.send_raw(wire.data(), wire.size());
  bool saw_error = false;
  while (attacker.pump(10.0)) {  // pump throws if the daemon never closes
    while (auto e = attacker.take_error()) {
      saw_error = true;
      EXPECT_EQ(e->code, serve::Errc::kFrameTooLarge);
    }
  }
  EXPECT_TRUE(saw_error);
  harness.assert_alive();
  harness.stop();
  EXPECT_GE(harness.server->stats().protocol_errors, 1u);
}

TEST(ServeFuzz, UnknownOpcodeLeavesConnectionUsable) {
  ServeFuzzHarness harness;
  serve::Client client;
  client.connect("127.0.0.1", harness.server->port());
  std::vector<std::uint8_t> p;
  p.push_back(0x7F);  // no such opcode
  serve::put_u32(p, 1);
  client.send(p);
  ASSERT_TRUE(client.pump(10.0));
  auto e = client.take_error();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->code, serve::Errc::kBadOpcode);
  // Same connection, real RPC: still in frame sync.
  const std::uint32_t sid = client.create_session("tiny", 2);
  client.close_session(sid);
  harness.stop();
}

TEST(ServeFuzz, OutOfRangeSessionIdIsTypedAndNonFatal) {
  ServeFuzzHarness harness;
  serve::Client client;
  client.connect("127.0.0.1", harness.server->port());
  std::vector<std::uint8_t> p = serve::payload(serve::Op::kStep);
  serve::put_u32(p, 0xFEEDBEEFu);  // no such session
  serve::put_u64(p, 5);
  client.send(p);
  ASSERT_TRUE(client.pump(10.0));
  auto e = client.take_error();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->code, serve::Errc::kBadSession);
  const std::uint32_t sid = client.create_session("tiny", 3);
  client.close_session(sid);
  harness.stop();
}

TEST(ServeFuzz, RandomGarbageNeverKillsTheDaemon) {
  ServeFuzzHarness harness;
  util::CorePrng prng(util::derive_seed(2012, 0x5E57));
  for (int round = 0; round < 24; ++round) {
    serve::Client attacker;
    attacker.connect("127.0.0.1", harness.server->port());
    std::uint8_t junk[256];
    const std::size_t len = 4 + prng.uniform_below(sizeof junk - 4);
    for (std::size_t i = 0; i < len; ++i) {
      junk[i] = static_cast<std::uint8_t>(prng.uniform_below(256));
    }
    attacker.send_raw(junk, len);
    attacker.close();
    // Liveness probe every few rounds keeps the test fast but interleaved.
    if (round % 6 == 5) harness.assert_alive();
  }
  harness.assert_alive();
  harness.stop();
}

}  // namespace
}  // namespace compass
