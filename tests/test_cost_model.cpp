// Unit tests for the LogGP-style communication cost model.
#include "comm/cost_model.h"

#include <gtest/gtest.h>

#include "comm/machine.h"

namespace compass::comm {
namespace {

TEST(CostModel, SendCostGrowsLinearlyInBytes) {
  CommCostModel m;
  const double small = m.mpi_send_cost(100);
  const double large = m.mpi_send_cost(100100);
  EXPECT_NEAR(large - small, 100000.0 / m.params().mpi_bytes_per_s, 1e-12);
}

TEST(CostModel, ZeroByteMessageStillPaysOverhead) {
  CommCostModel m;
  EXPECT_DOUBLE_EQ(m.mpi_send_cost(0), m.params().mpi_msg_overhead_s);
  EXPECT_DOUBLE_EQ(m.pgas_put_cost(0), m.params().pgas_put_overhead_s);
}

TEST(CostModel, PgasPutIsCheaperThanMpiSend) {
  // The one-sided latency advantage (Nishtala et al.) that section VII
  // exploits must hold for every message size under the default constants.
  CommCostModel m;
  for (std::size_t bytes : {0u, 100u, 10000u, 1000000u}) {
    EXPECT_LT(m.pgas_put_cost(bytes), m.mpi_send_cost(bytes)) << bytes;
  }
}

TEST(CostModel, ReduceScatterScalesWithCommunicator) {
  CommCostModel m;
  EXPECT_DOUBLE_EQ(m.reduce_scatter_cost(1), 0.0);
  const double p16 = m.reduce_scatter_cost(16);
  const double p256 = m.reduce_scatter_cost(256);
  const double p4096 = m.reduce_scatter_cost(4096);
  EXPECT_LT(p16, p256);
  EXPECT_LT(p256, p4096);
  // The linear beta term dominates eventually — the paper's observation
  // that Reduce-Scatter time "increases with increasing MPI communicator
  // size" and caps weak scaling.
  EXPECT_GT(p4096 - p256, (p256 - p16) * 2);
}

TEST(CostModel, BarrierIsLogDepth) {
  CommCostModel m;
  EXPECT_DOUBLE_EQ(m.barrier_cost(1), 0.0);
  EXPECT_NEAR(m.barrier_cost(2), m.params().barrier_alpha_s, 1e-15);
  EXPECT_NEAR(m.barrier_cost(1024), 10 * m.params().barrier_alpha_s, 1e-12);
  // Non-power-of-two rounds up.
  EXPECT_NEAR(m.barrier_cost(1025), 11 * m.params().barrier_alpha_s, 1e-12);
}

TEST(CostModel, BarrierBeatsReduceScatterAtScale) {
  // Section VII-A: a single low-latency global barrier replaces "a
  // collective Reduce-Scatter operation that scales linearly with
  // communicator size".
  CommCostModel m;
  for (int ranks : {4, 64, 1024, 16384}) {
    EXPECT_LT(m.barrier_cost(ranks), m.reduce_scatter_cost(ranks)) << ranks;
  }
}

TEST(CostModel, CustomParamsAreHonoured) {
  CommCostParams p;
  p.mpi_msg_overhead_s = 1.0;
  p.mpi_bytes_per_s = 10.0;
  CommCostModel m(p);
  EXPECT_DOUBLE_EQ(m.mpi_send_cost(20), 1.0 + 2.0);
}

TEST(Machine, BlueGeneQPreset) {
  const MachineDesc m = MachineDesc::blue_gene_q(1024);
  EXPECT_EQ(m.num_ranks, 1024);
  EXPECT_EQ(m.threads_per_rank, 32);
  EXPECT_EQ(m.ranks_per_node, 1);
  EXPECT_EQ(m.num_nodes(), 1024);
  EXPECT_EQ(m.cpus(), 1024 * 32);
}

TEST(Machine, BlueGenePPreset) {
  const MachineDesc m = MachineDesc::blue_gene_p(1024);
  EXPECT_EQ(m.num_ranks, 4096);
  EXPECT_EQ(m.num_nodes(), 1024);
  EXPECT_EQ(m.node_of_rank(0), 0);
  EXPECT_EQ(m.node_of_rank(3), 0);
  EXPECT_EQ(m.node_of_rank(4), 1);
}

TEST(Machine, NodeOfRankPartitionsEvenly) {
  const MachineDesc m = MachineDesc::blue_gene_p(4, 4, 1);
  int counts[4] = {0, 0, 0, 0};
  for (int r = 0; r < m.num_ranks; ++r) ++counts[m.node_of_rank(r)];
  for (int c : counts) EXPECT_EQ(c, 4);
}

}  // namespace
}  // namespace compass::comm
