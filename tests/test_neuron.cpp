// Unit tests for the TrueNorth digital integrate-leak-and-fire neuron
// (arch/neuron.h) — the scalar reference model every core dynamics path
// must match.
#include "arch/neuron.h"

#include <gtest/gtest.h>

#include <cmath>

namespace compass::arch {
namespace {

NeuronParams basic_params() {
  NeuronParams p;
  p.weights = {10, -5, 0, 0};
  p.leak = 0;
  p.threshold = 100;
  p.reset_value = 0;
  p.floor = -1000;
  p.reset_mode = ResetMode::kAbsolute;
  return p;
}

TEST(NeuronParams, DefaultIsValid) {
  EXPECT_TRUE(NeuronParams{}.valid());
}

TEST(NeuronParams, RejectsOutOfRangeWeights) {
  NeuronParams p = basic_params();
  p.weights[0] = 300;
  EXPECT_FALSE(p.valid());
  p.weights[0] = -300;
  EXPECT_FALSE(p.valid());
  p.weights[0] = 255;
  EXPECT_TRUE(p.valid());
  p.weights[0] = -256;
  EXPECT_TRUE(p.valid());
}

TEST(NeuronParams, RejectsNonPositiveThreshold) {
  NeuronParams p = basic_params();
  p.threshold = 0;
  EXPECT_FALSE(p.valid());
  p.threshold = -5;
  EXPECT_FALSE(p.valid());
}

TEST(NeuronParams, RejectsPositiveFloor) {
  NeuronParams p = basic_params();
  p.floor = 1;
  EXPECT_FALSE(p.valid());
  p.floor = 0;
  EXPECT_TRUE(p.valid());
}

TEST(NeuronParams, RejectsHugeJitterMask) {
  NeuronParams p = basic_params();
  p.threshold_mask_bits = 17;
  EXPECT_FALSE(p.valid());
  p.threshold_mask_bits = 16;
  EXPECT_TRUE(p.valid());
}

TEST(NeuronStep, IntegratesWithoutFiring) {
  util::CorePrng prng(1);
  NeuronParams p = basic_params();
  std::int32_t v = 0;
  EXPECT_FALSE(neuron_step(p, v, 40, prng));
  EXPECT_EQ(v, 40);
  EXPECT_FALSE(neuron_step(p, v, 40, prng));
  EXPECT_EQ(v, 80);
}

TEST(NeuronStep, FiresAtThreshold) {
  util::CorePrng prng(1);
  NeuronParams p = basic_params();
  std::int32_t v = 0;
  EXPECT_TRUE(neuron_step(p, v, 100, prng));  // v == threshold fires
  EXPECT_EQ(v, 0);                            // absolute reset
}

TEST(NeuronStep, DeterministicLeakSubtracts) {
  util::CorePrng prng(1);
  NeuronParams p = basic_params();
  p.leak = 3;
  std::int32_t v = 50;
  neuron_step(p, v, 0, prng);
  EXPECT_EQ(v, 47);
}

TEST(NeuronStep, NegativeLeakIsDrive) {
  util::CorePrng prng(1);
  NeuronParams p = basic_params();
  p.leak = -7;
  std::int32_t v = 0;
  neuron_step(p, v, 0, prng);
  EXPECT_EQ(v, 7);
}

TEST(NeuronStep, FloorClampsNegativeExcursion) {
  util::CorePrng prng(1);
  NeuronParams p = basic_params();
  p.floor = -20;
  std::int32_t v = 0;
  neuron_step(p, v, -500, prng);
  EXPECT_EQ(v, -20);
}

TEST(NeuronStep, LinearResetKeepsResidue) {
  util::CorePrng prng(1);
  NeuronParams p = basic_params();
  p.reset_mode = ResetMode::kLinear;
  std::int32_t v = 0;
  EXPECT_TRUE(neuron_step(p, v, 130, prng));
  EXPECT_EQ(v, 30);  // 130 - threshold(100)
}

TEST(NeuronStep, NoneResetLeavesPotential) {
  util::CorePrng prng(1);
  NeuronParams p = basic_params();
  p.reset_mode = ResetMode::kNone;
  std::int32_t v = 0;
  EXPECT_TRUE(neuron_step(p, v, 150, prng));
  EXPECT_EQ(v, 150);
  // Still above threshold: fires every subsequent tick.
  EXPECT_TRUE(neuron_step(p, v, 0, prng));
}

TEST(NeuronStep, AbsoluteResetToConfiguredValue) {
  util::CorePrng prng(1);
  NeuronParams p = basic_params();
  p.reset_value = -25;
  std::int32_t v = 0;
  EXPECT_TRUE(neuron_step(p, v, 100, prng));
  EXPECT_EQ(v, -25);
}

TEST(NeuronStep, PeriodicFiringUnderConstantDrive) {
  // Constant input I against threshold T fires every ceil(T / I) ticks.
  util::CorePrng prng(1);
  NeuronParams p = basic_params();
  std::int32_t v = 0;
  int fires = 0;
  for (int t = 0; t < 1000; ++t) {
    if (neuron_step(p, v, 7, prng)) ++fires;
  }
  // T=100, I=7 -> fires every 15 ticks (ceil(100/7)) -> ~66 in 1000.
  EXPECT_NEAR(fires, 66, 2);
}

TEST(NeuronStep, StochasticLeakMatchesMeanRate) {
  util::CorePrng prng(17);
  NeuronParams p = basic_params();
  p.leak = -128;  // +1 drive with probability 128/256 = 0.5
  p.flags = kStochasticLeak;
  std::int32_t v = 0;
  int fires = 0;
  const int ticks = 200000;
  for (int t = 0; t < ticks; ++t) {
    if (neuron_step(p, v, 0, prng)) ++fires;
  }
  // Mean drive 0.5/tick against threshold 100 -> rate 1/200 per tick.
  EXPECT_NEAR(fires, ticks / 200, 60);
}

TEST(NeuronStep, StochasticLeakConsumesPrngEvenWhenSubthreshold) {
  // The draw order must not depend on membrane state: two neurons with
  // different potentials consume the same number of draws per tick.
  NeuronParams p = basic_params();
  p.leak = -100;
  p.flags = kStochasticLeak;
  util::CorePrng a(5), b(5);
  std::int32_t va = 0, vb = 90;
  neuron_step(p, va, 0, a);
  neuron_step(p, vb, 0, b);
  EXPECT_EQ(a.state(), b.state());
}

TEST(NeuronStep, StochasticThresholdJittersUp) {
  // With jitter in [0, 15], potential = threshold - 1 sometimes must NOT
  // fire; potential = threshold + 15 always fires.
  util::CorePrng prng(23);
  NeuronParams p = basic_params();
  p.flags = kStochasticThreshold;
  p.threshold_mask_bits = 4;
  int fired_low = 0, fired_high = 0;
  for (int i = 0; i < 2000; ++i) {
    std::int32_t v = 0;
    if (neuron_step(p, v, p.threshold, prng)) ++fired_low;  // v == T
    v = 0;
    if (neuron_step(p, v, p.threshold + 15, prng)) ++fired_high;
  }
  EXPECT_EQ(fired_high, 2000);
  EXPECT_GT(fired_low, 0);
  EXPECT_LT(fired_low, 2000);
  EXPECT_NEAR(fired_low, 125, 60);  // P(jitter == 0) = 1/16
}

TEST(SynapticContribution, DeterministicPassThrough) {
  util::CorePrng prng(1);
  EXPECT_EQ(synaptic_contribution(42, false, prng), 42);
  EXPECT_EQ(synaptic_contribution(-17, false, prng), -17);
  EXPECT_EQ(synaptic_contribution(0, false, prng), 0);
}

TEST(SynapticContribution, StochasticMeanMatchesWeightOver256) {
  util::CorePrng prng(9);
  for (int w : {16, 64, 200, -64, -200}) {
    long sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      sum += synaptic_contribution(static_cast<std::int16_t>(w), true, prng);
    }
    const double mean = static_cast<double>(sum) / n;
    EXPECT_NEAR(mean, w / 256.0, 0.01) << "w=" << w;
  }
}

TEST(SynapticContribution, StochasticZeroWeightDrawsNothing) {
  util::CorePrng prng(3);
  const std::uint64_t before = prng.state();
  EXPECT_EQ(synaptic_contribution(0, true, prng), 0);
  EXPECT_EQ(prng.state(), before);  // zero weight must not consume a draw
}

// Parameterised sweep: firing never occurs below the (deterministic)
// threshold and always occurs at/above it, across reset modes.
class ResetModeSweep : public ::testing::TestWithParam<ResetMode> {};

TEST_P(ResetModeSweep, ThresholdBoundaryExact) {
  util::CorePrng prng(1);
  NeuronParams p = basic_params();
  p.reset_mode = GetParam();
  std::int32_t v = 0;
  EXPECT_FALSE(neuron_step(p, v, p.threshold - 1, prng));
  v = 0;
  EXPECT_TRUE(neuron_step(p, v, p.threshold, prng));
}

TEST_P(ResetModeSweep, RepeatedFiringIsStable) {
  util::CorePrng prng(1);
  NeuronParams p = basic_params();
  p.reset_mode = GetParam();
  std::int32_t v = 0;
  for (int i = 0; i < 100; ++i) {
    neuron_step(p, v, 60, prng);
    ASSERT_GE(v, p.floor);
    ASSERT_LE(v, (1 << 20));
  }
}

INSTANTIATE_TEST_SUITE_P(AllResetModes, ResetModeSweep,
                         ::testing::Values(ResetMode::kAbsolute,
                                           ResetMode::kLinear,
                                           ResetMode::kNone));

}  // namespace
}  // namespace compass::arch
