// Streaming spike-analytics lockdown suite (`ctest -L obs-analytics`).
//
// Three layers of contract:
//
//   1. Unit — the statistics themselves on synthetic spike streams with
//      hand-computable answers: Welford vs a direct two-pass variance, the
//      Goertzel band power peaking at the stimulus frequency, zero ISI CV
//      for a metronome neuron, the Up/Down detector on a square wave, and
//      the purity of the sampling hash.
//
//   2. Model — byte-identity of every emitted JSONL line across MPI/PGAS
//      transports, serial/parallel execution, and OpenMP thread widths for
//      a fixed seeded macaque model; the no-observer-effect guarantee that
//      attaching an engine leaves the main trace byte-identical; exact
//      offline re-derivation of every window from the recorded fired-spike
//      stream (the library-level form of `compass_prof --analytics`).
//
//   3. Golden — the committed tests/data/golden_analytics.jsonl pins the
//      serialization: any change to a formula, a field, or the shortest-
//      round-trip double writer shows up as a diff here. Regenerate with
//
//        COMPASS_REGOLDEN=1 ./build/tests/test_analytics
//
//      and commit the rewritten file together with the change that
//      intentionally moved it.
#include <gtest/gtest.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "comm/pgas_transport.h"
#include "compiler/pcc.h"
#include "obs/analytics.h"
#include "obs/jsonv.h"
#include "obs/trace.h"
#include "runtime/compass.h"

#ifndef COMPASS_TEST_DATA_DIR
#error "COMPASS_TEST_DATA_DIR must be defined by the build"
#endif

namespace compass {
namespace {

using obs::AnalyticsEngine;
using obs::AnalyticsOptions;
using obs::Band;
using obs::jsonv::JsonParser;
using obs::jsonv::JsonValue;
using obs::TraceBuffer;

// --- helpers -----------------------------------------------------------------

/// Drive a single-rank, single-region engine with `counts[t]` fires per
/// tick (neuron j of core 0 fires when j < counts[t], matching the
/// at-most-once-per-tick discipline of a real neuron). Returns the
/// buffered records after flush().
TraceBuffer drive_counts(const std::vector<std::uint64_t>& counts,
                         AnalyticsOptions opt) {
  AnalyticsEngine engine(1, 1, {}, opt);
  TraceBuffer buf;
  engine.add_sink(&buf);
  for (std::size_t t = 0; t < counts.size(); ++t) {
    engine.begin_tick(t);
    for (std::uint64_t j = 0; j < counts[t]; ++j) {
      engine.on_fire(0, 0, static_cast<unsigned>(j));
    }
    engine.end_tick();
  }
  engine.flush();
  return buf;
}

/// Parse the first *window* record (skipping the config header) of a
/// buffered run.
JsonValue first_window(const TraceBuffer& buf) {
  for (const auto& rec : buf.analytics()) {
    if (rec.ticks == 0) continue;  // config header
    return JsonParser(rec.json).parse();
  }
  ADD_FAILURE() << "no window record emitted";
  return {};
}

double num(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  EXPECT_NE(f, nullptr) << "missing field " << key;
  return f != nullptr ? f->number : 0.0;
}

std::uint64_t u64(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  EXPECT_NE(f, nullptr) << "missing field " << key;
  return f != nullptr ? f->integer : 0;
}

/// All emitted JSONL lines of a buffered run, newline-joined — the byte
/// string every identity assertion below compares.
std::string joined_lines(const TraceBuffer& buf) {
  std::string out;
  for (const auto& rec : buf.analytics()) {
    out += rec.json;
    out += '\n';
  }
  return out;
}

// --- 1. unit: the statistics on synthetic streams ---------------------------

TEST(AnalyticsUnit, WelfordMatchesDirectTwoPassVariance) {
  const std::vector<std::uint64_t> counts = {3, 7, 0, 12, 5, 5, 9, 1,
                                             0, 14, 2, 8, 6, 3, 11, 4};
  AnalyticsOptions opt;
  opt.window_ticks = counts.size();
  const TraceBuffer buf = drive_counts(counts, opt);
  const JsonValue w = first_window(buf);
  const JsonValue* pop = w.find("pop");
  ASSERT_NE(pop, nullptr);

  double mean = 0.0;
  for (const std::uint64_t c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(counts.size());
  double ss = 0.0;
  for (const std::uint64_t c : counts) {
    const double d = static_cast<double>(c) - mean;
    ss += d * d;
  }
  const double var = ss / static_cast<double>(counts.size() - 1);

  EXPECT_EQ(u64(w, "spikes"), 90u);
  EXPECT_NEAR(num(*pop, "mean"), mean, 1e-12);
  EXPECT_NEAR(num(*pop, "var"), var, 1e-9);
  EXPECT_NEAR(num(*pop, "fano"), var / mean, 1e-9);
  // 1 tick == 1 ms: rate_hz = mean count * 1000 / (cores * 256 neurons).
  EXPECT_NEAR(num(*pop, "rate_hz"), mean * 1000.0 / 256.0, 1e-9);
}

TEST(AnalyticsUnit, GoertzelBandPowerPeaksAtStimulusFrequency) {
  // A 40 Hz impulse train (one burst every 25 ticks at the 1 kHz tick
  // rate): all of its spectral lines sit at multiples of 40 Hz, so the
  // gamma bin must dominate every lower band.
  std::vector<std::uint64_t> counts(100, 0);
  for (std::size_t t = 0; t < counts.size(); t += 25) counts[t] = 200;
  AnalyticsOptions opt;
  opt.window_ticks = counts.size();
  const TraceBuffer buf = drive_counts(counts, opt);
  const JsonValue w = first_window(buf);
  const JsonValue* bands = w.find("bands");
  ASSERT_NE(bands, nullptr);
  const double gamma = num(*bands, "gamma");
  EXPECT_GT(gamma, 0.0);
  for (const char* other : {"delta", "theta", "alpha", "beta"}) {
    EXPECT_GT(gamma, 10.0 * num(*bands, other)) << "band " << other;
  }
}

TEST(AnalyticsUnit, MetronomeNeuronHasZeroIsiCv) {
  // One neuron firing every 5 ticks: 13 fires in [0, 60], 12 intervals,
  // every one of them exactly 5 → mean 5, CV 0. sample_every = 1 tracks
  // every neuron, so the metronome is certainly in the sampled set.
  std::vector<std::uint64_t> counts(64, 0);
  for (std::size_t t = 0; t < counts.size(); t += 5) counts[t] = 1;
  AnalyticsOptions opt;
  opt.window_ticks = counts.size();
  opt.sample_every = 1;
  const TraceBuffer buf = drive_counts(counts, opt);
  const JsonValue w = first_window(buf);
  const JsonValue* isi = w.find("isi");
  ASSERT_NE(isi, nullptr);
  EXPECT_EQ(u64(*isi, "neurons"), 1u);
  EXPECT_EQ(u64(*isi, "intervals"), 12u);
  EXPECT_DOUBLE_EQ(num(*isi, "mean"), 5.0);
  EXPECT_DOUBLE_EQ(num(*isi, "cv"), 0.0);
  // bit_width(5) == 3: all 12 intervals land in histogram bucket 3.
  const JsonValue* hist = isi->find("hist");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->array.size(), 4u);
  EXPECT_EQ(hist->array[3].integer, 12u);
}

TEST(AnalyticsUnit, UpDownDetectorCountsStatesAndTransitions) {
  // Square wave: 10 Up ticks at 100 spikes, 10 Down at 0, twice over.
  // Threshold = 0.5 * peak = 50 → 20 Up, 20 Down, 3 flips.
  std::vector<std::uint64_t> counts(40, 0);
  for (std::size_t t = 0; t < counts.size(); ++t) {
    if ((t / 10) % 2 == 0) counts[t] = 100;
  }
  AnalyticsOptions opt;
  opt.window_ticks = counts.size();
  const TraceBuffer buf = drive_counts(counts, opt);
  const JsonValue w = first_window(buf);
  const JsonValue* ud = w.find("updown");
  ASSERT_NE(ud, nullptr);
  EXPECT_DOUBLE_EQ(num(*ud, "threshold"), 50.0);
  EXPECT_EQ(u64(*ud, "up_ticks"), 20u);
  EXPECT_EQ(u64(*ud, "down_ticks"), 20u);
  EXPECT_EQ(u64(*ud, "transitions"), 3u);
}

TEST(AnalyticsUnit, SamplingIsAPureFunctionOfNeuronIdentity) {
  // sampled() must implement H = SplitMix64(seed ^ pack(core, neuron)),
  // sampled <=> H % sample_every == 0 — the formula the offline replay and
  // both transports rely on to track the same neuron set.
  AnalyticsOptions opt;
  opt.sample_every = 16;
  AnalyticsEngine engine(1, 8, {}, opt);
  std::uint64_t hits = 0;
  for (std::uint32_t core = 0; core < 8; ++core) {
    for (unsigned j = 0; j < arch::kNeuronsPerCore; ++j) {
      const bool want =
          AnalyticsEngine::sample_hash(opt.seed, core, j) % 16 == 0;
      EXPECT_EQ(engine.sampled(core, j), want);
      hits += want ? 1u : 0u;
    }
  }
  // ~1/16 of 2048 neurons; a loose band catches a broken hash.
  EXPECT_GT(hits, 64u);
  EXPECT_LT(hits, 256u);

  // And the precomputed fast path agrees with the formula: the same
  // synthetic stream produces identical bytes from two engines built with
  // the same options.
  std::vector<std::uint64_t> counts(32, 5);
  const std::string a = joined_lines(drive_counts(counts, opt));
  const std::string b = joined_lines(drive_counts(counts, opt));
  EXPECT_EQ(a, b);
}

TEST(AnalyticsUnit, ConfigHeaderIsEmittedOnceBeforeFirstWindow) {
  AnalyticsOptions opt;
  opt.window_ticks = 4;
  const TraceBuffer buf = drive_counts({1, 2, 3, 4, 5, 6, 7, 8}, opt);
  ASSERT_EQ(buf.analytics().size(), 3u);  // header + two windows
  EXPECT_EQ(buf.analytics()[0].ticks, 0u);
  EXPECT_NE(buf.analytics()[0].json.find("\"type\":\"analytics_config\""),
            std::string::npos);
  EXPECT_EQ(buf.analytics()[1].window, 0u);
  EXPECT_EQ(buf.analytics()[2].window, 1u);
  EXPECT_EQ(buf.analytics()[2].first_tick, 4u);
}

// --- 2. model: byte-identity across the execution matrix --------------------

constexpr arch::Tick kModelTicks = 50;  // 3 full windows of 16 + a partial

compiler::PccResult build_fixed_model() {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  mopt.seed = 2012;
  compiler::PccOptions popt;
  popt.ranks = 3;
  popt.threads_per_rank = 2;
  return compiler::compile(cocomac::build_macaque_spec(mopt), popt);
}

std::vector<std::uint32_t> region_map(const compiler::PccResult& pcc) {
  std::vector<std::uint32_t> core_region(pcc.model.num_cores(), 0);
  for (std::size_t g = 0; g < pcc.regions.size(); ++g) {
    const compiler::RegionInfo& r = pcc.regions[g];
    for (std::int64_t c = 0; c < r.cores; ++c) {
      core_region[static_cast<std::size_t>(r.first_core) +
                  static_cast<std::size_t>(c)] = static_cast<std::uint32_t>(g);
    }
  }
  return core_region;
}

struct ModelRun {
  runtime::RunReport report;
  std::string analytics_jsonl;  // every emitted line, run(…) flushes
  std::string trace_jsonl;      // the main span/tick trace
};

ModelRun run_model(const compiler::PccResult& pcc, bool use_pgas,
                   bool parallel, bool with_analytics) {
  arch::Model model = pcc.model;
  std::unique_ptr<comm::Transport> transport;
  if (use_pgas) {
    transport = std::make_unique<comm::PgasTransport>(pcc.partition.ranks(),
                                                      comm::CommCostModel{});
  } else {
    transport = std::make_unique<comm::MpiTransport>(pcc.partition.ranks(),
                                                     comm::CommCostModel{});
  }
  runtime::Config cfg;
  cfg.parallel_execution = parallel;
  cfg.measure = false;
  runtime::Compass sim(model, pcc.partition, *transport, cfg);

  std::ostringstream os;
  obs::JsonlTraceWriter writer(os, obs::JsonlOptions{.include_measured = false});
  sim.add_trace_sink(&writer);

  std::optional<AnalyticsEngine> engine;
  TraceBuffer buf;
  if (with_analytics) {
    AnalyticsOptions opt;
    opt.window_ticks = 16;
    engine.emplace(pcc.partition.ranks(),
                   static_cast<std::uint32_t>(pcc.model.num_cores()),
                   region_map(pcc), opt);
    engine->add_sink(&buf);
    sim.set_analytics(&*engine);
  }

  ModelRun out;
  out.report = sim.run(kModelTicks);
  out.analytics_jsonl = joined_lines(buf);
  out.trace_jsonl = os.str();
  return out;
}

TEST(AnalyticsModel, AttachedEngineLeavesMainTraceByteIdentical) {
  // The no-observer-effect half of the acceptance criterion: the spans,
  // tick records, and run report of an instrumented run are byte-for-byte
  // the bytes of a bare run.
  const compiler::PccResult pcc = build_fixed_model();
  const ModelRun bare = run_model(pcc, false, false, false);
  const ModelRun instrumented = run_model(pcc, false, false, true);
  EXPECT_EQ(bare.trace_jsonl, instrumented.trace_jsonl);
  EXPECT_EQ(bare.report.fired_spikes, instrumented.report.fired_spikes);
  EXPECT_EQ(bare.report.routed_spikes, instrumented.report.routed_spikes);
  EXPECT_TRUE(bare.analytics_jsonl.empty());
  EXPECT_FALSE(instrumented.analytics_jsonl.empty());
}

TEST(AnalyticsModel, ByteIdenticalAcrossTransportsAndParallelism) {
  const compiler::PccResult pcc = build_fixed_model();
  const ModelRun baseline = run_model(pcc, false, false, true);
  ASSERT_FALSE(baseline.analytics_jsonl.empty());
  // Header + 3 full windows + the flushed partial.
  EXPECT_EQ(std::count(baseline.analytics_jsonl.begin(),
                       baseline.analytics_jsonl.end(), '\n'),
            5);
  {
    SCOPED_TRACE("MPI parallel");
    EXPECT_EQ(run_model(pcc, false, true, true).analytics_jsonl,
              baseline.analytics_jsonl);
  }
  {
    SCOPED_TRACE("PGAS serial");
    EXPECT_EQ(run_model(pcc, true, false, true).analytics_jsonl,
              baseline.analytics_jsonl);
  }
  {
    SCOPED_TRACE("PGAS parallel");
    EXPECT_EQ(run_model(pcc, true, true, true).analytics_jsonl,
              baseline.analytics_jsonl);
  }
}

TEST(AnalyticsModel, ByteIdenticalAcrossOmpThreadWidths) {
#ifdef _OPENMP
  const compiler::PccResult pcc = build_fixed_model();
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const ModelRun baseline = run_model(pcc, false, true, true);
  for (const int threads : {2, 4}) {
    omp_set_num_threads(threads);
    SCOPED_TRACE("OMP threads = " + std::to_string(threads));
    EXPECT_EQ(run_model(pcc, false, true, true).analytics_jsonl,
              baseline.analytics_jsonl);
    EXPECT_EQ(run_model(pcc, true, true, true).analytics_jsonl,
              baseline.analytics_jsonl);
  }
  omp_set_num_threads(saved);
#else
  GTEST_SKIP() << "built without OpenMP; thread-width sweep not applicable";
#endif
}

TEST(AnalyticsModel, OfflineReplayRederivesEveryWindowExactly) {
  // Record the fired-spike stream (spike hook — the same stream a raster
  // file captures and the same stream the engine counts), then replay it
  // through a fresh single-rank engine: every line must come back
  // byte-for-byte. This is the library-level form of
  //   compass_prof --analytics <jsonl> --raster <rst>
  const compiler::PccResult pcc = build_fixed_model();

  arch::Model model = pcc.model;
  comm::MpiTransport transport(pcc.partition.ranks(), comm::CommCostModel{});
  runtime::Config cfg;
  cfg.measure = false;
  cfg.parallel_execution = false;
  runtime::Compass sim(model, pcc.partition, transport, cfg);

  std::vector<std::tuple<arch::Tick, arch::CoreId, unsigned>> fires;
  sim.set_spike_hook([&fires](arch::Tick t, arch::CoreId c, unsigned j) {
    fires.emplace_back(t, c, j);
  });

  AnalyticsOptions opt;
  opt.window_ticks = 16;
  AnalyticsEngine live(pcc.partition.ranks(),
                       static_cast<std::uint32_t>(pcc.model.num_cores()),
                       region_map(pcc), opt);
  TraceBuffer live_buf;
  live.add_sink(&live_buf);
  sim.set_analytics(&live);
  sim.run(kModelTicks);
  ASSERT_FALSE(fires.empty());

  // Replay: rank count is irrelevant to the output (per-rank staging merges
  // into the same integer totals), so the offline pass always uses 1.
  AnalyticsEngine replay(1, static_cast<std::uint32_t>(pcc.model.num_cores()),
                         region_map(pcc), opt);
  TraceBuffer replay_buf;
  replay.add_sink(&replay_buf);
  std::size_t next = 0;
  for (arch::Tick t = 0; t < kModelTicks; ++t) {
    replay.begin_tick(t);
    while (next < fires.size() && std::get<0>(fires[next]) == t) {
      replay.on_fire(0, std::get<1>(fires[next]), std::get<2>(fires[next]));
      ++next;
    }
    replay.end_tick();
  }
  replay.flush();

  EXPECT_EQ(joined_lines(replay_buf), joined_lines(live_buf));
}

// --- 3. golden ---------------------------------------------------------------

std::string golden_path() {
  return std::string(COMPASS_TEST_DATA_DIR) + "/golden_analytics.jsonl";
}

TEST(AnalyticsGolden, WindowsMatchCommittedJsonl) {
  const compiler::PccResult pcc = build_fixed_model();
  const std::string actual = run_model(pcc, false, false, true).analytics_jsonl;

  if (std::getenv("COMPASS_REGOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << golden_path()
      << " — regenerate with COMPASS_REGOLDEN=1 (see file header)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str());
}

}  // namespace
}  // namespace compass
