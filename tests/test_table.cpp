// Unit tests for the table/CSV reporter used by the benchmark harness.
#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace compass::util {
namespace {

TEST(Table, CellsRoundTrip) {
  Table t({"a", "b", "c"});
  t.row().add("x").add(std::int64_t{-5}).add(3.14159, 2);
  t.row().add("y").add(std::uint64_t{7}).add(1.0, 0);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.at(0, 0), "x");
  EXPECT_EQ(t.at(0, 1), "-5");
  EXPECT_EQ(t.at(0, 2), "3.14");
  EXPECT_EQ(t.at(1, 2), "1");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.row().add("short").add(1);
  t.row().add("muchlongername").add(2);
  std::ostringstream os;
  t.print(os, "title");
  const std::string out = os.str();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("muchlongername"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"h1", "h2"});
  t.row().add("a").add(1);
  t.row().add("b").add(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "h1,h2\na,1\nb,2\n");
}

TEST(FormatHelpers, HumanCount) {
  EXPECT_EQ(human_count(999), "999");
  EXPECT_EQ(human_count(1500), "1.50K");
  EXPECT_EQ(human_count(2.56e8), "256.00M");
  EXPECT_EQ(human_count(65e9), "65.00B");
  EXPECT_EQ(human_count(16e12), "16.00T");
}

TEST(FormatHelpers, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.50 KiB");
  EXPECT_EQ(human_bytes(3.0 * 1024 * 1024), "3.00 MiB");
  EXPECT_EQ(human_bytes(2.5 * 1024 * 1024 * 1024), "2.50 GiB");
}

TEST(FormatHelpers, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 3), "1.235");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace compass::util
