// Closed-form property sweeps over the TrueNorth neuron dynamics: where the
// model has an exact analytical consequence, the simulator must hit it
// exactly (deterministic paths) or within binomial tolerance (stochastic
// paths). Parameterised gtest keeps each property swept over a grid.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "arch/neuron.h"

namespace compass::arch {
namespace {

// --- Deterministic drive: period is exactly ceil(threshold / drive) --------

class PeriodicitySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PeriodicitySweep, FiringPeriodIsCeilThresholdOverDrive) {
  const auto [threshold, drive] = GetParam();
  util::CorePrng prng(1);
  NeuronParams p;
  p.threshold = threshold;
  p.leak = static_cast<std::int16_t>(-drive);  // negative leak == drive
  p.floor = 0;
  std::int32_t v = 0;

  const int period = (threshold + drive - 1) / drive;
  int last_fire = -1;
  int fires = 0;
  for (int t = 0; t < 2000; ++t) {
    if (neuron_step(p, v, 0, prng)) {
      if (last_fire >= 0) {
        ASSERT_EQ(t - last_fire, period)
            << "threshold=" << threshold << " drive=" << drive;
      }
      last_fire = t;
      ++fires;
    }
  }
  EXPECT_NEAR(static_cast<double>(fires), 2000.0 / period, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, PeriodicitySweep,
                         ::testing::Combine(::testing::Values(1, 7, 64, 255, 1000),
                                            ::testing::Values(1, 3, 16, 200)));

// --- Stochastic drive: mean rate = 1000 * (p8/256) / threshold Hz ----------

class StochasticRateSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StochasticRateSweep, MeanRateMatchesClosedForm) {
  const auto [threshold, p8] = GetParam();
  util::CorePrng prng(99);
  NeuronParams p;
  p.threshold = threshold;
  p.leak = static_cast<std::int16_t>(-p8);
  p.flags = kStochasticLeak;
  p.floor = 0;
  std::int32_t v = 0;

  const int ticks = 100000;
  int fires = 0;
  for (int t = 0; t < ticks; ++t) {
    if (neuron_step(p, v, 0, prng)) ++fires;
  }
  const double expected = ticks * (p8 / 256.0) / threshold;
  // Renewal process: between fires the neuron needs `threshold` successes;
  // fire-count variance ~ expected / threshold (gamma interarrivals).
  const double sigma = std::sqrt(expected / threshold + 1.0);
  EXPECT_NEAR(fires, expected, 6.0 * sigma + 2.0)
      << "threshold=" << threshold << " p8=" << p8;
}

INSTANTIATE_TEST_SUITE_P(Grid, StochasticRateSweep,
                         ::testing::Combine(::testing::Values(4, 16, 64),
                                            ::testing::Values(32, 128, 250)));

// --- Linear reset conserves super-threshold residue --------------------------

TEST(LinearReset, LongRunAverageEqualsInputRate) {
  // With subtract-threshold reset and no clamping, potential is conserved:
  // fires * threshold + V_final == total input.
  util::CorePrng prng(1);
  NeuronParams p;
  p.threshold = 37;
  p.reset_mode = ResetMode::kLinear;
  p.floor = -(1 << 20);
  std::int32_t v = 0;
  long long fires = 0, input_total = 0;
  util::CorePrng input_rng(5);
  for (int t = 0; t < 50000; ++t) {
    const std::int32_t input = static_cast<std::int32_t>(input_rng.uniform_below(13));
    input_total += input;
    if (neuron_step(p, v, input, prng)) ++fires;
  }
  EXPECT_EQ(fires * 37 + v, input_total);
}

// --- Stochastic synapse expectation across the weight grid -------------------

class StochasticSynapseSweep : public ::testing::TestWithParam<int> {};

TEST_P(StochasticSynapseSweep, MeanContributionIsWeightOver256) {
  const int w = GetParam();
  util::CorePrng prng(1234);
  long long sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += synaptic_contribution(static_cast<std::int16_t>(w), true, prng);
  }
  const double pw = std::min(std::abs(w), 255) / 256.0;
  const double sigma = std::sqrt(n * pw * (1 - pw)) + 1.0;
  EXPECT_NEAR(static_cast<double>(sum),
              (w > 0 ? 1.0 : -1.0) * n * pw, 6.0 * sigma)
      << "w=" << w;
}

INSTANTIATE_TEST_SUITE_P(Weights, StochasticSynapseSweep,
                         ::testing::Values(-255, -128, -17, 1, 17, 128, 255));

// --- Threshold jitter: exact firing probability at a given potential ---------

class JitterSweep : public ::testing::TestWithParam<int> {};

TEST_P(JitterSweep, FiringProbabilityMatchesMaskDistribution) {
  // At membrane v = alpha + x the neuron fires iff jitter <= x, which has
  // probability (x + 1) / 2^k for jitter uniform on [0, 2^k - 1].
  const int bits = GetParam();
  util::CorePrng prng(7);
  NeuronParams p;
  p.threshold = 100;
  p.threshold_mask_bits = static_cast<std::uint8_t>(bits);
  p.flags = kStochasticThreshold;
  p.floor = 0;
  const int mask = (1 << bits) - 1;
  for (const int x : {0, mask / 2, mask}) {
    int fires = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
      std::int32_t v = 0;
      if (neuron_step(p, v, p.threshold + x, prng)) ++fires;
    }
    const double prob = static_cast<double>(x + 1) / (mask + 1);
    const double sigma = std::sqrt(n * prob * (1 - prob)) + 1.0;
    EXPECT_NEAR(fires, n * prob, 6.0 * sigma) << "bits=" << bits << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(MaskBits, JitterSweep, ::testing::Values(1, 4, 8, 12));

}  // namespace
}  // namespace compass::arch
