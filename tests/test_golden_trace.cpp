// Golden trace regression test: the first 12 ticks of the frozen macaque
// run (seed 2012, 77 cores, 3 ranks x 2 threads, MPI transport, measure off)
// serialize to *exactly* the JSONL committed at tests/data/golden_trace.jsonl.
// Every field is either a functional counter or a modelled (deterministic)
// communication time, so the file is stable across machines, thread counts,
// and repeated runs.
//
// Regenerating after an intentional model/trace-schema change:
//
//   cmake --build build -j
//   COMPASS_REGOLDEN=1 ./build/tests/test_golden_trace
//
// then commit the rewritten tests/data/golden_trace.jsonl together with the
// change that moved it — never loosen the comparison.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "compiler/pcc.h"
#include "json_lite.h"
#include "obs/trace.h"
#include "runtime/compass.h"

#ifndef COMPASS_TEST_DATA_DIR
#error "COMPASS_TEST_DATA_DIR must be defined by the build"
#endif

namespace compass {
namespace {

constexpr arch::Tick kGoldenTicks = 12;

std::string golden_path() {
  return std::string(COMPASS_TEST_DATA_DIR) + "/golden_trace.jsonl";
}

std::string render_trace() {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  mopt.seed = 2012;
  compiler::PccOptions popt;
  popt.ranks = 3;
  popt.threads_per_rank = 2;
  compiler::PccResult pcc =
      compiler::compile(cocomac::build_macaque_spec(mopt), popt);

  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Config cfg;
  cfg.measure = false;  // modelled times only: deterministic everywhere
  runtime::Compass sim(pcc.model, pcc.partition, transport, cfg);

  std::ostringstream os;
  obs::JsonlTraceWriter writer(os, obs::JsonlOptions{.include_measured = false});
  sim.add_trace_sink(&writer);
  sim.run(kGoldenTicks);
  return os.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(GoldenTrace, FirstTicksMatchCommittedJsonl) {
  const std::string actual = render_trace();

  if (std::getenv("COMPASS_REGOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << golden_path()
      << " — regenerate with COMPASS_REGOLDEN=1 (see file header)";
  std::ostringstream expected;
  expected << in.rdbuf();

  const std::vector<std::string> want = split_lines(expected.str());
  const std::vector<std::string> got = split_lines(actual);
  // Spans + one tick record per tick, for every (tick, rank, phase).
  ASSERT_EQ(want.size(), kGoldenTicks * (3u * 3u + 1u));
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "trace line " << (i + 1) << " diverged";
  }
}

TEST(GoldenTrace, EveryGoldenLineIsValidJson) {
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path();
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(testing::json_valid(line)) << "line " << (n + 1) << ": " << line;
    ++n;
  }
  EXPECT_EQ(n, kGoldenTicks * (3u * 3u + 1u));
}

TEST(GoldenTrace, RenderedTraceCarriesNoHostTimes) {
  const std::string actual = render_trace();
  // With measure=false and include_measured=false nothing host-measured can
  // leak into the golden file.
  EXPECT_EQ(actual.find("compute_s"), std::string::npos);
  EXPECT_NE(actual.find("comm_s"), std::string::npos);
}

}  // namespace
}  // namespace compass
