// Tests for the application layer: template-matching classification and
// Reichardt motion detection — both have exactly checkable behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/classifier.h"
#include "apps/motion.h"
#include "comm/mpi_transport.h"
#include "runtime/compass.h"

namespace compass::apps {
namespace {

// --- Classifier -------------------------------------------------------------

Image glyph(std::initializer_list<unsigned> on_pixels) {
  Image img{};
  for (unsigned i : on_pixels) img[i] = true;
  return img;
}

/// Three visually distinct 16x8 glyphs (rows of 16 pixels).
std::vector<Image> letter_templates() {
  Image bar_top{}, bar_bottom{}, checker{};
  for (unsigned col = 0; col < 16; ++col) {
    bar_top[col] = bar_top[16 + col] = true;           // rows 0-1
    bar_bottom[96 + col] = bar_bottom[112 + col] = true;  // rows 6-7
  }
  for (unsigned i = 0; i < kImagePixels; ++i) checker[i] = (i % 2) == 0;
  return {bar_top, bar_bottom, checker};
}

TEST(Classifier, RejectsOversizedConfiguration) {
  arch::Model model(1, 0);
  std::vector<Image> templates(65);  // 65 x 4 > 256 neurons
  EXPECT_THROW(PatternClassifier(model.core(0), templates),
               std::invalid_argument);
  EXPECT_THROW(
      PatternClassifier(model.core(0), std::span<const Image>{}),
      std::invalid_argument);
}

TEST(Classifier, CleanTemplatesClassifyToThemselves) {
  arch::Model model(1, 0);
  const auto templates = letter_templates();
  PatternClassifier clf(model.core(0), templates);
  for (std::size_t cls = 0; cls < templates.size(); ++cls) {
    EXPECT_EQ(clf.classify(templates[cls], static_cast<arch::Tick>(cls)),
              static_cast<int>(cls));
  }
}

TEST(Classifier, ToleratesModerateNoise) {
  arch::Model model(1, 0);
  const auto templates = letter_templates();
  PatternClassifier clf(model.core(0), templates);
  int correct = 0, trials = 0;
  for (std::size_t cls = 0; cls < templates.size(); ++cls) {
    for (unsigned seed = 0; seed < 10; ++seed) {
      const Image noisy = corrupt(templates[cls], /*flips=*/4, seed);
      ++trials;
      if (clf.classify(noisy, static_cast<arch::Tick>(trials)) ==
          static_cast<int>(cls)) {
        ++correct;
      }
    }
  }
  EXPECT_GE(correct * 10, trials * 8);  // >= 80% under 4-pixel noise
}

TEST(Classifier, GarbageMatchesNothing) {
  arch::Model model(1, 0);
  const auto templates = letter_templates();
  PatternClassifier clf(model.core(0), templates);
  Image blank{};
  EXPECT_EQ(clf.classify(blank), -1);
  // All-on image: mismatch penalties beat every template.
  Image full{};
  for (auto& p : full) p = true;
  EXPECT_EQ(clf.classify(full, 1), -1);
}

TEST(Classifier, ClassOfNeuronMapsCopies) {
  arch::Model model(1, 0);
  const auto templates = letter_templates();
  ClassifierOptions opt;
  opt.neurons_per_class = 8;
  PatternClassifier clf(model.core(0), templates, opt);
  EXPECT_EQ(clf.class_of_neuron(0), 0);
  EXPECT_EQ(clf.class_of_neuron(7), 0);
  EXPECT_EQ(clf.class_of_neuron(8), 1);
  EXPECT_EQ(clf.class_of_neuron(23), 2);
  EXPECT_EQ(clf.class_of_neuron(24), -1);  // beyond the last class
}

TEST(Classifier, RenderAndCorruptHelpers) {
  const Image img = glyph({0, 17, 127});
  const std::string art = render(img);
  EXPECT_NE(art.find('#'), std::string::npos);
  const Image flipped = corrupt(img, 1, 3);
  int diff = 0;
  for (unsigned i = 0; i < kImagePixels; ++i) {
    if (img[i] != flipped[i]) ++diff;
  }
  EXPECT_EQ(diff, 1);
}

// --- Motion detection ---------------------------------------------------------

struct MotionHarness {
  arch::Model model{3, 0};
  std::unique_ptr<MotionDetector> det;
  runtime::Partition part = runtime::Partition::uniform(3, 3, 1);
  comm::MpiTransport transport{3, comm::CommCostModel{}};
  std::unique_ptr<runtime::Compass> sim;
  std::uint64_t right_spikes = 0, left_spikes = 0;

  explicit MotionHarness(unsigned speed = 2) {
    MotionDetectorOptions opt;
    opt.speed = speed;
    det = std::make_unique<MotionDetector>(model, 0, 1, 2, opt);
    sim = std::make_unique<runtime::Compass>(model, part, transport);
    sim->set_spike_hook([this](arch::Tick, arch::CoreId c, unsigned j) {
      if (c != det->detector_core()) return;
      if (MotionDetector::is_rightward(j)) {
        ++right_spikes;
      } else {
        ++left_spikes;
      }
    });
  }

  /// Sweep a spot across the retina: pixel p0 + step*k at tick 1 + speed*k.
  void sweep(int p0, int step, unsigned speed, unsigned frames) {
    for (unsigned k = 0; k < frames; ++k) {
      const int pixel = p0 + step * static_cast<int>(k);
      const arch::Tick when = 1 + static_cast<arch::Tick>(speed) * k;
      // Stimuli within the 15-tick injection horizon are scheduled before
      // the run; the rest are injected as the simulation reaches them.
      while (sim->now() + arch::kMaxDelay < when) sim->step();
      det->stimulate(static_cast<unsigned>(pixel), when);
    }
  }
};

TEST(Motion, RightwardSweepFiresOnlyRightCells) {
  MotionHarness h(/*speed=*/2);
  h.sweep(/*p0=*/10, /*step=*/+1, /*speed=*/2, /*frames=*/12);
  while (h.sim->now() < 40) h.sim->step();
  EXPECT_GT(h.right_spikes, 5u);
  EXPECT_EQ(h.left_spikes, 0u);
}

TEST(Motion, LeftwardSweepFiresOnlyLeftCells) {
  MotionHarness h(2);
  h.sweep(40, -1, 2, 12);
  while (h.sim->now() < 40) h.sim->step();
  EXPECT_GT(h.left_spikes, 5u);
  EXPECT_EQ(h.right_spikes, 0u);
}

TEST(Motion, WrongSpeedIsRejected) {
  // A sweep at half the tuned speed produces no coincidences.
  MotionHarness h(/*speed=*/4);
  h.sweep(10, +1, /*speed=*/1, 12);
  while (h.sim->now() < 40) h.sim->step();
  EXPECT_EQ(h.right_spikes, 0u);
  EXPECT_EQ(h.left_spikes, 0u);
}

TEST(Motion, StaticFlickerIsIgnored) {
  MotionHarness h(2);
  for (unsigned k = 0; k < 10; ++k) {
    h.det->stimulate(20, 1 + 2 * k);
    while (h.sim->now() + arch::kMaxDelay < 1 + 2 * (k + 1)) h.sim->step();
  }
  while (h.sim->now() < 30) h.sim->step();
  EXPECT_EQ(h.right_spikes, 0u);
  EXPECT_EQ(h.left_spikes, 0u);
}

TEST(Motion, ValidatesConfiguration) {
  arch::Model model(3, 0);
  MotionDetectorOptions bad;
  bad.speed = 0;
  EXPECT_THROW(MotionDetector(model, 0, 1, 2, bad), std::invalid_argument);
  bad.speed = 15;
  EXPECT_THROW(MotionDetector(model, 0, 1, 2, bad), std::invalid_argument);
  MotionDetectorOptions ok;
  EXPECT_THROW(MotionDetector(model, 0, 0, 2, ok), std::invalid_argument);
}

TEST(Motion, StimulateValidatesPixel) {
  arch::Model model(3, 0);
  MotionDetector det(model, 0, 1, 2);
  EXPECT_THROW(det.stimulate(kRetinaPixels, 1), std::out_of_range);
}

}  // namespace
}  // namespace compass::apps
