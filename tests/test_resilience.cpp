// Resilience lockdown suite (`ctest -L resilience`).
//
// Two halves, mirroring src/resilience/:
//   * Checkpoint/restart — exact-resume equivalence (run N straight must be
//     byte-identical to run K, checkpoint, restore, run N-K: spike rasters,
//     JSONL traces, and RunReport counters), crash-consistent file handling,
//     typed rejection of corrupt/truncated/alien files, and bounded
//     retention in the periodic manager.
//   * Fault injection — deterministic seeded fault streams, per-policy
//     degradation behaviour (fail-fast throws, warn-and-count completes and
//     accounts, retry recovers and charges backoff into virtual time), and
//     the spike-conservation ledger routed == local + remote + lost.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "compiler/pcc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/checkpoint.h"
#include "resilience/checkpoint_manager.h"
#include "resilience/fault.h"
#include "runtime/compass.h"

namespace compass {
namespace {

namespace fs = std::filesystem;

using arch::CoreId;
using arch::Tick;
using resilience::Checkpoint;
using resilience::CheckpointErrc;
using resilience::CheckpointError;
using resilience::FaultPlan;
using resilience::FaultPolicy;
using SpikeEvent = std::tuple<Tick, CoreId, unsigned>;

/// The frozen seed-2012 network the determinism/golden suites also use.
compiler::PccResult build_fixed_model() {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  mopt.seed = 2012;
  compiler::PccOptions popt;
  popt.ranks = 3;
  popt.threads_per_rank = 2;
  return compiler::compile(cocomac::build_macaque_spec(mopt), popt);
}

struct Harness {
  arch::Model model;
  runtime::Partition partition;
  std::unique_ptr<comm::Transport> transport;
  std::unique_ptr<runtime::Compass> sim;
  std::vector<SpikeEvent> spikes;
  std::ostringstream trace_os;
  std::unique_ptr<obs::JsonlTraceWriter> trace;

  Harness(const arch::Model& m, const runtime::Partition& part)
      : model(m), partition(part) {
    transport = std::make_unique<comm::MpiTransport>(part.ranks(),
                                                     comm::CommCostModel{});
    runtime::Config cfg;
    cfg.measure = false;  // modelled times only: traces compare byte-for-byte
    sim = std::make_unique<runtime::Compass>(model, partition, *transport, cfg);
    sim->set_spike_hook([this](Tick t, CoreId c, unsigned j) {
      spikes.emplace_back(t, c, j);
    });
    trace = std::make_unique<obs::JsonlTraceWriter>(
        trace_os, obs::JsonlOptions{.include_measured = false});
    sim->add_trace_sink(trace.get());
  }
};

void expect_reports_equal(const runtime::RunReport& a,
                          const runtime::RunReport& b) {
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.fired_spikes, b.fired_spikes);
  EXPECT_EQ(a.routed_spikes, b.routed_spikes);
  EXPECT_EQ(a.local_spikes, b.local_spikes);
  EXPECT_EQ(a.remote_spikes, b.remote_spikes);
  EXPECT_EQ(a.synaptic_events, b.synaptic_events);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.spikes_lost, b.spikes_lost);
  // Modelled-only virtual time (measure=false) is deterministic too.
  EXPECT_DOUBLE_EQ(a.virtual_time.synapse, b.virtual_time.synapse);
  EXPECT_DOUBLE_EQ(a.virtual_time.neuron, b.virtual_time.neuron);
  EXPECT_DOUBLE_EQ(a.virtual_time.network, b.virtual_time.network);
}

std::string unique_dir(const char* tag) {
  static int counter = 0;
  fs::path dir = fs::path(::testing::TempDir()) /
                 (std::string("compass_resilience_") + tag + "_" +
                  std::to_string(::getpid()) + "_" + std::to_string(counter++));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// --- Exact-resume equivalence -----------------------------------------------

TEST(CheckpointResume, SplitRunIsByteIdenticalToStraightRun) {
  const compiler::PccResult pcc = build_fixed_model();

  Harness straight(pcc.model, pcc.partition);
  const runtime::RunReport full = straight.sim->run(100);

  // First half, checkpoint through a real file, restore, second half.
  const std::string dir = unique_dir("resume");
  const std::string path = dir + "/checkpoint-50.ckpt";
  Harness first(pcc.model, pcc.partition);
  first.sim->run(50);
  resilience::save_checkpoint_file(
      resilience::capture(*first.sim, first.model), path);

  Harness second(pcc.model, pcc.partition);
  const Checkpoint cp = resilience::load_checkpoint_file(path);
  EXPECT_EQ(cp.tick, 50u);
  resilience::restore(cp, *second.sim, second.model);
  const runtime::RunReport resumed = second.sim->run(50);

  // Spike rasters: first half's events ++ second half's events == full run.
  std::vector<SpikeEvent> joined = first.spikes;
  joined.insert(joined.end(), second.spikes.begin(), second.spikes.end());
  EXPECT_EQ(joined, straight.spikes);

  // JSONL traces concatenate byte-for-byte.
  EXPECT_EQ(first.trace_os.str() + second.trace_os.str(),
            straight.trace_os.str());

  // Functional counters and modelled virtual time compose exactly.
  expect_reports_equal(resumed, full);
  fs::remove_all(dir);
}

TEST(CheckpointResume, DelayStraddlingTheBoundarySurvives) {
  // Core 0 neuron 0 self-drives (negative leak integrates +1/tick) and fires
  // every 3 ticks into core 1 axon 0 with the maximum delay of 15 ticks —
  // so a checkpoint at tick 8 has several spikes in flight in the axon ring
  // that must be drained after the restore, in the right slots.
  arch::Model proto(2, /*seed=*/7);
  {
    arch::NeuronParams p;
    p.leak = -1;
    p.threshold = 3;
    proto.core(0).configure_neuron(
        0, p, arch::AxonTarget{1, 0, arch::kMaxDelay});
  }
  {
    proto.core(1).set_synapse(0, 0);
    arch::NeuronParams p;
    p.weights[0] = 10;
    p.threshold = 5;
    proto.core(1).configure_neuron(0, p, arch::AxonTarget{});  // sink
  }
  proto.reseed_cores();
  ASSERT_EQ(proto.validate(), "");
  const runtime::Partition part = runtime::Partition::uniform(2, 2, 1);

  Harness straight(proto, part);
  straight.sim->run(40);
  ASSERT_FALSE(straight.spikes.empty());
  // The sink core must actually fire, i.e. delayed cross-rank delivery works.
  bool sink_fired = false;
  for (const auto& [t, c, j] : straight.spikes) sink_fired |= (c == 1);
  ASSERT_TRUE(sink_fired);

  Harness first(proto, part);
  first.sim->run(8);  // < kMaxDelay: fired spikes are still in the ring
  const std::string bytes = resilience::serialize_checkpoint(
      resilience::capture(*first.sim, first.model));

  Harness second(proto, part);
  const Checkpoint cp = resilience::parse_checkpoint(bytes);
  resilience::restore(cp, *second.sim, second.model);
  second.sim->run(32);

  std::vector<SpikeEvent> joined = first.spikes;
  joined.insert(joined.end(), second.spikes.begin(), second.spikes.end());
  EXPECT_EQ(joined, straight.spikes);
  EXPECT_EQ(first.trace_os.str() + second.trace_os.str(),
            straight.trace_os.str());
}

TEST(CheckpointResume, RestoreThenZeroTickRunStaysWellFormed) {
  const compiler::PccResult pcc = build_fixed_model();
  Harness first(pcc.model, pcc.partition);
  first.sim->run(50);
  const std::string bytes = resilience::serialize_checkpoint(
      resilience::capture(*first.sim, first.model));

  Harness second(pcc.model, pcc.partition);
  resilience::restore(resilience::parse_checkpoint(bytes), *second.sim,
                      second.model);
  const runtime::RunReport rep = second.sim->run(0);

  EXPECT_EQ(rep.ticks, 50u);
  EXPECT_EQ(rep.fired_spikes, first.sim->report().fired_spikes);
  EXPECT_TRUE(std::isfinite(rep.slowdown()));
  EXPECT_TRUE(std::isfinite(rep.mean_rate_hz(19712)));
  EXPECT_TRUE(std::isfinite(rep.virtual_total_s()));
  EXPECT_DOUBLE_EQ(rep.virtual_time.total(),
                   first.sim->report().virtual_time.total());
  EXPECT_EQ(second.trace_os.str(), "");  // zero ticks emit zero records
}

TEST(CheckpointResume, FreshZeroTickRunReportsZeroesNotNans) {
  const compiler::PccResult pcc = build_fixed_model();
  Harness h(pcc.model, pcc.partition);
  const runtime::RunReport rep = h.sim->run(0);
  EXPECT_EQ(rep.ticks, 0u);
  EXPECT_EQ(rep.slowdown(), 0.0);
  EXPECT_EQ(rep.mean_rate_hz(19712), 0.0);
}

// --- File format: typed rejection --------------------------------------------

Checkpoint small_checkpoint(Tick ticks = 5) {
  arch::Model model(2, 3);
  model.reseed_cores();
  const runtime::Partition part = runtime::Partition::uniform(2, 1, 1);
  comm::MpiTransport transport(1, comm::CommCostModel{});
  runtime::Config cfg;
  cfg.measure = false;
  runtime::Compass sim(model, part, transport, cfg);
  sim.run(ticks);
  return resilience::capture(sim, model);
}

TEST(CheckpointFormat, RoundTripsThroughBytesAndFiles) {
  const Checkpoint cp = small_checkpoint();
  const std::string bytes = resilience::serialize_checkpoint(cp);
  const Checkpoint back = resilience::parse_checkpoint(bytes);
  EXPECT_EQ(back.tick, cp.tick);
  EXPECT_TRUE(back.model == cp.model);
  EXPECT_EQ(back.report.ticks, cp.report.ticks);
  EXPECT_EQ(back.report.fired_spikes, cp.report.fired_spikes);
  EXPECT_EQ(back.ledger_ticks, cp.ledger_ticks);

  const std::string dir = unique_dir("roundtrip");
  const std::string path = dir + "/cp.ckpt";
  resilience::save_checkpoint_file(cp, path);
  const Checkpoint from_file = resilience::load_checkpoint_file(path);
  EXPECT_TRUE(from_file.model == cp.model);
  // The atomic-rename protocol must leave no temp file behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove_all(dir);
}

TEST(CheckpointFormat, EverySingleFlippedByteIsRejectedTyped) {
  const std::string good =
      resilience::serialize_checkpoint(small_checkpoint());
  const Checkpoint sane = resilience::parse_checkpoint(good);  // sanity
  EXPECT_EQ(sane.tick, 5u);

  // Flip every byte of the header and every 97th byte of the payload (the
  // fuzz suite covers random positions; this is the deterministic sweep).
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < 24; ++i) positions.push_back(i);
  for (std::size_t i = 24; i < good.size(); i += 97) positions.push_back(i);
  for (const std::size_t pos : positions) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x41);
    EXPECT_THROW(resilience::parse_checkpoint(bad), CheckpointError)
        << "flipped byte at offset " << pos << " was accepted";
  }
}

TEST(CheckpointFormat, EveryTruncationIsRejectedTyped) {
  const std::string good =
      resilience::serialize_checkpoint(small_checkpoint());
  for (std::size_t len = 0; len < good.size(); len += 41) {
    EXPECT_THROW(resilience::parse_checkpoint(good.substr(0, len)),
                 CheckpointError)
        << "truncation to " << len << " bytes was accepted";
  }
  // One past every section boundary too: drop just the final byte.
  EXPECT_THROW(resilience::parse_checkpoint(good.substr(0, good.size() - 1)),
               CheckpointError);
}

TEST(CheckpointFormat, RejectionCodesAreSpecific) {
  const std::string good =
      resilience::serialize_checkpoint(small_checkpoint());

  try {
    resilience::parse_checkpoint(
        "this is not a checkpoint file, just a long-enough string");
    FAIL();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kBadMagic);
  }
  // Anything shorter than the fixed header is a truncation, checked before
  // the magic is even read:
  try {
    resilience::parse_checkpoint("short");
    FAIL();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kTruncated);
  }

  // A bumped version byte invalidates the header CRC first, so it reports
  // header corruption — still a typed rejection; the version-specific code
  // needs a re-stamped CRC, which the writer alone can produce. The pure
  // truncation path is directly reachable:
  try {
    resilience::parse_checkpoint(good.substr(0, 10));
    FAIL();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kTruncated);
  }

  try {
    std::string bad = good;
    bad[good.size() - 1] ^= 0x1;  // last payload byte: section CRC mismatch
    resilience::parse_checkpoint(bad);
    FAIL();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kSectionCorrupt);
  }

  EXPECT_STREQ(resilience::to_string(CheckpointErrc::kBadMagic), "bad-magic");
}

TEST(CheckpointFormat, ShapeMismatchIsRejected) {
  const Checkpoint cp = small_checkpoint();  // 2 cores
  arch::Model other(3, 3);
  const runtime::Partition part = runtime::Partition::uniform(3, 1, 1);
  comm::MpiTransport transport(1, comm::CommCostModel{});
  runtime::Compass sim(other, part, transport);
  try {
    resilience::restore(cp, sim, other);
    FAIL();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kShapeMismatch);
  }
}

TEST(CheckpointFormat, MissingFileIsTypedIoError) {
  try {
    resilience::load_checkpoint_file("/nonexistent/dir/cp.ckpt");
    FAIL();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kIo);
  }
}

// --- Periodic manager ---------------------------------------------------------

TEST(CheckpointManager, PeriodicWritesWithBoundedRetention) {
  const compiler::PccResult pcc = build_fixed_model();
  Harness h(pcc.model, pcc.partition);

  const std::string dir = unique_dir("manager");
  obs::MetricsRegistry metrics;
  resilience::CheckpointOptions opt;
  opt.dir = dir;
  opt.every = 4;
  opt.keep = 2;
  resilience::CheckpointManager mgr(opt, &metrics);
  mgr.attach(*h.sim, h.model);
  h.sim->run(21);  // boundaries at 4, 8, 12, 16, 20

  EXPECT_EQ(mgr.stats().snapshots, 5u);
  EXPECT_GT(mgr.stats().bytes, 0u);

  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    files.push_back(entry.path().filename().string());
  }
  std::sort(files.begin(), files.end());
  EXPECT_EQ(files, (std::vector<std::string>{"checkpoint-16.ckpt",
                                             "checkpoint-20.ckpt"}));
  EXPECT_EQ(resilience::CheckpointManager::latest_in(dir),
            (fs::path(dir) / "checkpoint-20.ckpt").string());

  // The retained newest snapshot restores and resumes exactly.
  Harness straight(pcc.model, pcc.partition);
  straight.sim->run(30);
  Harness resumed(pcc.model, pcc.partition);
  resilience::restore(resilience::load_checkpoint_file(
                          resilience::CheckpointManager::latest_in(dir)),
                      *resumed.sim, resumed.model);
  resumed.sim->run(10);
  expect_reports_equal(resumed.sim->report(), straight.sim->report());

  bool saw_metric = false;
  for (const obs::MetricValue& m : metrics.snapshot()) {
    if (m.name == "ckpt.snapshots") {
      saw_metric = true;
      EXPECT_EQ(m.count, 5u);
    }
  }
  EXPECT_TRUE(saw_metric);
  fs::remove_all(dir);
}

TEST(CheckpointManager, LatestInMissingOrEmptyDirIsEmpty) {
  EXPECT_EQ(resilience::CheckpointManager::latest_in("/nonexistent/xyz"), "");
  const std::string dir = unique_dir("empty");
  EXPECT_EQ(resilience::CheckpointManager::latest_in(dir), "");
  fs::remove_all(dir);
}

TEST(CheckpointManager, UnwritableDirectoryIsTypedIoError) {
  resilience::CheckpointOptions opt;
  opt.dir = "/proc/compass-cannot-write-here";
  resilience::CheckpointManager mgr(opt);
  const compiler::PccResult pcc = build_fixed_model();
  Harness h(pcc.model, pcc.partition);
  h.sim->run(1);
  try {
    mgr.write_now(*h.sim, h.model);
    FAIL();
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kIo);
  }
}

// --- Fault plans --------------------------------------------------------------

TEST(FaultPlan, ParsesAndRoundTrips) {
  const FaultPlan plan = FaultPlan::parse(
      "drop=0.25,corrupt=0.125,dup=0.1,stall=0.5,stall-s=1e-5,seed=99,"
      "policy=retry,max-retries=5,backoff-s=3e-6,kill-rank=2,kill-tick=40");
  EXPECT_DOUBLE_EQ(plan.drop, 0.25);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.125);
  EXPECT_DOUBLE_EQ(plan.duplicate, 0.1);
  EXPECT_DOUBLE_EQ(plan.stall, 0.5);
  EXPECT_DOUBLE_EQ(plan.stall_s, 1e-5);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_EQ(plan.policy, FaultPolicy::kRetry);
  EXPECT_EQ(plan.max_retries, 5);
  EXPECT_EQ(plan.kill_rank, 2);
  EXPECT_EQ(plan.kill_tick, 40u);
  EXPECT_TRUE(plan.any());

  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_DOUBLE_EQ(again.drop, plan.drop);
  EXPECT_EQ(again.policy, plan.policy);
  EXPECT_EQ(again.kill_rank, plan.kill_rank);

  EXPECT_FALSE(FaultPlan{}.any());
  EXPECT_FALSE(FaultPlan::parse("").any());
}

TEST(FaultPlan, MalformedSpecsThrowTyped) {
  using resilience::FaultPlanError;
  EXPECT_THROW(FaultPlan::parse("drop=1.5"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("drop=-0.1"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("drop=abc"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("bogus=1"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("drop"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("policy=never"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("max-retries=0"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("stall-s=0"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("seed=99999999999999999999999"),
               FaultPlanError);
}

TEST(FaultPlan, EnvironmentIsHonouredAndValidated) {
  ::setenv("COMPASS_FAULT_PLAN", "drop=0.5,seed=3", 1);
  const auto plan = FaultPlan::from_env();
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->drop, 0.5);

  ::setenv("COMPASS_FAULT_PLAN", "drop=oops", 1);
  EXPECT_THROW(FaultPlan::from_env(), resilience::FaultPlanError);

  ::unsetenv("COMPASS_FAULT_PLAN");
  EXPECT_FALSE(FaultPlan::from_env().has_value());
}

// --- Fault injection ----------------------------------------------------------

struct FaultyRun {
  runtime::RunReport report;
  comm::TickFaultStats totals;
  std::vector<SpikeEvent> spikes;
  std::string trace;
};

FaultyRun run_with_faults(const compiler::PccResult& pcc, const FaultPlan& plan,
                          Tick ticks = 40,
                          obs::MetricsRegistry* metrics = nullptr) {
  arch::Model model = pcc.model;
  comm::MpiTransport inner(pcc.partition.ranks(), comm::CommCostModel{});
  resilience::FaultInjectingTransport transport(inner, plan);
  runtime::Config cfg;
  cfg.measure = false;
  runtime::Compass sim(model, pcc.partition, transport, cfg);
  FaultyRun out;
  sim.set_spike_hook([&out](Tick t, CoreId c, unsigned j) {
    out.spikes.emplace_back(t, c, j);
  });
  std::ostringstream os;
  obs::JsonlTraceWriter writer(os, obs::JsonlOptions{.include_measured = false});
  sim.add_trace_sink(&writer);
  if (metrics != nullptr) transport.set_metrics(metrics);
  out.report = sim.run(ticks);
  out.totals = transport.totals();
  out.trace = os.str();
  return out;
}

TEST(FaultInjection, NoopPlanIsFullyTransparent) {
  const compiler::PccResult pcc = build_fixed_model();
  Harness plain(pcc.model, pcc.partition);
  const runtime::RunReport expect = plain.sim->run(40);

  const FaultyRun wrapped = run_with_faults(pcc, FaultPlan{});
  expect_reports_equal(wrapped.report, expect);
  EXPECT_EQ(wrapped.spikes, plain.spikes);
  // Zero fault counters: the JSONL writer must omit the fault fields, so the
  // wrapped trace is byte-identical to the pre-resilience layer's output.
  EXPECT_EQ(wrapped.trace, plain.trace_os.str());
  EXPECT_EQ(wrapped.trace.find("\"faults\""), std::string::npos);
}

TEST(FaultInjection, SeededFaultStreamIsDeterministic) {
  const compiler::PccResult pcc = build_fixed_model();
  FaultPlan plan;
  plan.drop = 0.2;
  plan.duplicate = 0.1;
  plan.stall = 0.1;
  plan.seed = 11;
  const FaultyRun a = run_with_faults(pcc, plan);
  const FaultyRun b = run_with_faults(pcc, plan);
  EXPECT_GT(a.report.faults_injected, 0u);
  expect_reports_equal(a.report, b.report);
  EXPECT_EQ(a.spikes, b.spikes);
  EXPECT_EQ(a.trace, b.trace);

  plan.seed = 12;  // a different seed must give a different fault history
  const FaultyRun c = run_with_faults(pcc, plan);
  EXPECT_NE(a.report.faults_injected, c.report.faults_injected);
}

TEST(FaultInjection, WarnAndCountCompletesAndConservesSpikes) {
  const compiler::PccResult pcc = build_fixed_model();
  FaultPlan plan;
  plan.drop = 0.3;
  plan.seed = 5;
  obs::MetricsRegistry metrics;
  const FaultyRun r = run_with_faults(pcc, plan, 40, &metrics);

  EXPECT_GT(r.report.faults_injected, 0u);
  EXPECT_GT(r.report.spikes_lost, 0u);
  EXPECT_EQ(r.report.messages_retried, 0u);
  // The degradation ledger: every routed spike is delivered locally,
  // delivered remotely, or accounted lost — nothing vanishes silently.
  EXPECT_EQ(r.report.routed_spikes,
            r.report.local_spikes + r.report.remote_spikes +
                r.report.spikes_lost);
  // Counters surface in metrics and in the per-tick trace records.
  bool saw = false;
  for (const obs::MetricValue& m : metrics.snapshot()) {
    if (m.name == "fault.injected") {
      saw = true;
      EXPECT_EQ(m.count, r.report.faults_injected);
    }
  }
  EXPECT_TRUE(saw);
  EXPECT_NE(r.trace.find("\"faults\""), std::string::npos);
  EXPECT_NE(r.trace.find("\"lost\""), std::string::npos);
}

TEST(FaultInjection, CorruptionIsDetectedAndCounted) {
  const compiler::PccResult pcc = build_fixed_model();
  FaultPlan plan;
  plan.corrupt = 0.3;
  plan.seed = 5;
  const FaultyRun r = run_with_faults(pcc, plan);
  EXPECT_GT(r.totals.corrupt_msgs, 0u);
  EXPECT_EQ(r.totals.dropped_msgs, 0u);
  EXPECT_EQ(r.report.routed_spikes,
            r.report.local_spikes + r.report.remote_spikes +
                r.report.spikes_lost);
}

TEST(FaultInjection, FailFastThrowsOnFirstLoss) {
  const compiler::PccResult pcc = build_fixed_model();
  FaultPlan plan;
  plan.drop = 0.5;
  plan.policy = FaultPolicy::kFailFast;
  plan.seed = 5;
  EXPECT_THROW(run_with_faults(pcc, plan), resilience::FaultError);
}

TEST(FaultInjection, RetryPolicyRecoversMessagesAndChargesBackoff) {
  const compiler::PccResult pcc = build_fixed_model();
  FaultPlan warn;
  warn.drop = 0.3;
  warn.seed = 5;
  FaultPlan retry = warn;
  retry.policy = FaultPolicy::kRetry;
  retry.max_retries = 4;

  const FaultyRun w = run_with_faults(pcc, warn);
  const FaultyRun r = run_with_faults(pcc, retry);

  EXPECT_GT(r.report.messages_retried, 0u);
  // Most drops recover within 4 retries at p=0.3 (expected loss rate
  // 0.3^5 < 1%), so far fewer spikes are lost than under warn-and-count...
  EXPECT_LT(r.report.spikes_lost, w.report.spikes_lost / 4);
  // ...and the resends cost modelled virtual time (exponential backoff is
  // folded into the send phase of the ledger).
  EXPECT_GT(r.report.virtual_time.total(), w.report.virtual_time.total());
  EXPECT_EQ(r.report.routed_spikes,
            r.report.local_spikes + r.report.remote_spikes +
                r.report.spikes_lost);
}

TEST(FaultInjection, DuplicatesDegradeAccountingNotDynamics) {
  const compiler::PccResult pcc = build_fixed_model();
  Harness plain(pcc.model, pcc.partition);
  const runtime::RunReport baseline = plain.sim->run(40);

  FaultPlan plan;
  plan.duplicate = 0.4;
  plan.seed = 5;
  const FaultyRun r = run_with_faults(pcc, plan);
  EXPECT_GT(r.totals.dup_msgs, 0u);
  // Axon delivery is an idempotent bit-set: dynamics must be unchanged...
  EXPECT_EQ(r.spikes, plain.spikes);
  EXPECT_EQ(r.report.fired_spikes, baseline.fired_spikes);
  // ...but the wire saw the duplicates.
  EXPECT_GT(r.report.messages, baseline.messages);
  EXPECT_GT(r.report.wire_bytes, baseline.wire_bytes);
}

TEST(FaultInjection, StallChargesLatencyWithoutLosingSpikes) {
  const compiler::PccResult pcc = build_fixed_model();
  Harness plain(pcc.model, pcc.partition);
  const runtime::RunReport baseline = plain.sim->run(40);

  FaultPlan plan;
  plan.stall = 0.5;
  plan.stall_s = 1e-4;
  plan.seed = 5;
  const FaultyRun r = run_with_faults(pcc, plan);
  EXPECT_GT(r.totals.stalled_msgs, 0u);
  EXPECT_EQ(r.report.spikes_lost, 0u);
  EXPECT_EQ(r.spikes, plain.spikes);
  EXPECT_GT(r.report.virtual_time.total(), baseline.virtual_time.total());
}

TEST(FaultInjection, KilledRankLosesAllItsTraffic) {
  const compiler::PccResult pcc = build_fixed_model();
  FaultPlan plan;
  plan.kill_rank = 1;
  plan.kill_tick = 10;
  const FaultyRun r = run_with_faults(pcc, plan);
  EXPECT_GT(r.report.faults_injected, 0u);
  EXPECT_GT(r.report.spikes_lost, 0u);
  EXPECT_EQ(r.report.routed_spikes,
            r.report.local_spikes + r.report.remote_spikes +
                r.report.spikes_lost);

  // Killing a rank that does not exist is a plan error, not a silent no-op.
  comm::MpiTransport inner(3, comm::CommCostModel{});
  FaultPlan bad;
  bad.kill_rank = 7;
  EXPECT_THROW(resilience::FaultInjectingTransport(inner, bad),
               resilience::FaultPlanError);
}

TEST(FaultInjection, CheckpointRestartResumesAcrossAFaultyRun) {
  // The combined story: a fault-injected run checkpoints, "crashes", and a
  // resumed simulator with the same plan continues with identical dynamics
  // to an uninterrupted faulty run (the decorator's PRNG stream restarts,
  // so fault history differs; the *surviving* spike dynamics must match the
  // restored state exactly — which the straight-run raster prefix verifies).
  const compiler::PccResult pcc = build_fixed_model();
  FaultPlan plan;
  plan.stall = 0.3;  // non-lossy faults: dynamics stay checkpoint-exact
  plan.seed = 5;

  arch::Model model = pcc.model;
  comm::MpiTransport inner(3, comm::CommCostModel{});
  resilience::FaultInjectingTransport transport(inner, plan);
  runtime::Config cfg;
  cfg.measure = false;
  runtime::Compass sim(model, pcc.partition, transport, cfg);
  sim.run(20);
  const Checkpoint cp = resilience::capture(sim, model);

  arch::Model model2 = pcc.model;
  comm::MpiTransport inner2(3, comm::CommCostModel{});
  resilience::FaultInjectingTransport transport2(inner2, plan);
  runtime::Compass sim2(model2, pcc.partition, transport2, cfg);
  resilience::restore(cp, sim2, model2);
  transport2.set_start_tick(cp.tick);
  std::vector<SpikeEvent> tail;
  sim2.set_spike_hook([&tail](Tick t, CoreId c, unsigned j) {
    tail.emplace_back(t, c, j);
  });
  sim2.run(20);

  Harness straight(pcc.model, pcc.partition);
  straight.sim->run(40);
  std::vector<SpikeEvent> expected(
      straight.spikes.begin() +
          static_cast<std::ptrdiff_t>(straight.spikes.size() - tail.size()),
      straight.spikes.end());
  EXPECT_EQ(tail, expected);
  EXPECT_EQ(sim2.report().ticks, 40u);
}

}  // namespace
}  // namespace compass
