// Observability layer tests: metrics registry semantics, trace record
// consistency against the run report, JSONL/Chrome-trace writer validity,
// and the end-to-end wiring through Compass, the transports, and PCC.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "compiler/pcc.h"
#include "json_lite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/compass.h"

namespace compass {
namespace {

using testing::json_valid;

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, CountersAccumulate) {
  obs::MetricsRegistry reg;
  const auto id = reg.counter("spikes", "spikes");
  reg.add(id);
  reg.add(id, 41);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "spikes");
  EXPECT_EQ(snap[0].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(snap[0].count, 42u);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  const auto a = reg.counter("x");
  const auto b = reg.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
  // Same name as a different kind is a caller bug.
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
}

TEST(MetricsRegistry, GaugeHoldsLastValue) {
  obs::MetricsRegistry reg;
  const auto id = reg.gauge("virtual_s", "s");
  reg.set(id, 1.5);
  reg.set(id, 2.25);
  EXPECT_DOUBLE_EQ(reg.snapshot()[0].value, 2.25);
}

TEST(MetricsRegistry, HistogramBucketsArePowersOfTwo) {
  obs::MetricsRegistry reg;
  const auto id = reg.histogram("per_tick", "spikes");
  reg.observe(id, 0);   // bucket 0
  reg.observe(id, 1);   // bucket 1: [1, 2)
  reg.observe(id, 2);   // bucket 2: [2, 4)
  reg.observe(id, 3);   // bucket 2
  reg.observe(id, 12);  // bucket 4: [8, 16)
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricValue& m = snap[0];
  ASSERT_EQ(m.buckets.size(), 5u);
  EXPECT_EQ(m.buckets[0], 1u);
  EXPECT_EQ(m.buckets[1], 1u);
  EXPECT_EQ(m.buckets[2], 2u);
  EXPECT_EQ(m.buckets[3], 0u);
  EXPECT_EQ(m.buckets[4], 1u);
  EXPECT_EQ(m.observations, 5u);
  EXPECT_EQ(m.sum, 18u);
  EXPECT_EQ(m.min, 0u);
  EXPECT_EQ(m.max, 12u);
}

TEST(MetricsRegistry, HistogramBucketBoundaries) {
  // Bucket b holds [2^(b-1), 2^b) for b >= 1; bucket 0 holds only v = 0.
  obs::MetricsRegistry reg;
  const auto id = reg.histogram("edges");
  reg.observe(id, 0);                     // bucket 0
  reg.observe(id, 1);                     // bucket 1: [1, 2)
  reg.observe(id, 2);                     // bucket 2: [2, 4)
  reg.observe(id, 4);                     // bucket 3: exact power of two
  reg.observe(id, 7);                     // bucket 3: last value of [4, 8)
  reg.observe(id, 8);                     // bucket 4
  reg.observe(id, (1ULL << 32));          // bucket 33
  reg.observe(id, (1ULL << 32) - 1);      // bucket 32
  reg.observe(id, UINT64_MAX);            // bucket 64 (top bucket)
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricValue& m = snap[0];
  ASSERT_EQ(m.buckets.size(), 65u);
  EXPECT_EQ(m.buckets[0], 1u);
  EXPECT_EQ(m.buckets[1], 1u);
  EXPECT_EQ(m.buckets[2], 1u);
  EXPECT_EQ(m.buckets[3], 2u);
  EXPECT_EQ(m.buckets[4], 1u);
  EXPECT_EQ(m.buckets[32], 1u);
  EXPECT_EQ(m.buckets[33], 1u);
  EXPECT_EQ(m.buckets[64], 1u);
  EXPECT_EQ(m.observations, 9u);
  EXPECT_EQ(m.min, 0u);
  EXPECT_EQ(m.max, UINT64_MAX);
}

TEST(MetricsRegistry, JsonSnapshotIsValidJson) {
  obs::MetricsRegistry reg;
  reg.add(reg.counter("a \"quoted\" name\n", "bytes"), 7);
  reg.set(reg.gauge("g"), -0.125);
  reg.observe(reg.histogram("h"), 1023);
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"metrics\""), std::string::npos);
}

TEST(Prometheus, CounterGaugeAndHistogramExposition) {
  obs::MetricsRegistry reg;
  reg.add(reg.counter("comm.messages", "msgs"), 68);
  reg.set(reg.gauge("run.virtual_time_s", "s"), 0.25);
  const auto h = reg.histogram("tick.fired", "spikes");
  reg.observe(h, 0);  // bucket 0
  reg.observe(h, 1);  // bucket 1
  reg.observe(h, 3);  // bucket 2

  std::ostringstream os;
  obs::write_snapshot_prometheus(os, reg.snapshot());
  const std::string prom = os.str();

  // Names sanitized to [a-zA-Z0-9_:]; counters gain the _total suffix.
  EXPECT_NE(prom.find("# TYPE comm_messages_total counter"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("comm_messages_total 68"), std::string::npos);
  EXPECT_NE(prom.find("# HELP comm_messages_total comm.messages (msgs)"),
            std::string::npos);
  EXPECT_NE(prom.find("run_virtual_time_s 0.25"), std::string::npos);

  // Histogram buckets are cumulative, le = 2^b - 1, closed with +Inf.
  EXPECT_NE(prom.find("tick_fired_bucket{le=\"0\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("tick_fired_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("tick_fired_bucket{le=\"3\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("tick_fired_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("tick_fired_sum 4"), std::string::npos);
  EXPECT_NE(prom.find("tick_fired_count 3"), std::string::npos);
}

TEST(Prometheus, TopBucketUpperBoundIsU64Max) {
  obs::MetricsRegistry reg;
  reg.observe(reg.histogram("wide"), UINT64_MAX);
  std::ostringstream os;
  obs::write_snapshot_prometheus(os, reg.snapshot());
  // bit_width(UINT64_MAX) = 64; 2^64 - 1 does not fit, so the bound clamps.
  EXPECT_NE(os.str().find("wide_bucket{le=\"18446744073709551615\"} 1"),
            std::string::npos)
      << os.str();
}

TEST(Prometheus, NamesStartingWithDigitsGetPrefixed) {
  obs::MetricsRegistry reg;
  reg.add(reg.counter("9lives"), 1);
  std::ostringstream os;
  obs::write_snapshot_prometheus(os, reg.snapshot());
  EXPECT_NE(os.str().find("_9lives_total 1"), std::string::npos) << os.str();
}

// --- Trace writers --------------------------------------------------------

obs::SpanRecord sample_span() {
  obs::SpanRecord s;
  s.tick = 3;
  s.rank = 1;
  s.phase = obs::Phase::kNeuron;
  s.compute_s = 1.25e-4;
  s.comm_s = 2e-6;
  s.spikes = 17;
  s.messages = 2;
  s.bytes = 340;
  return s;
}

TEST(JsonlTraceWriter, EveryLineIsValidJson) {
  std::ostringstream os;
  obs::JsonlTraceWriter w(os);
  w.on_span(sample_span());
  obs::TickRecord t;
  t.tick = 3;
  t.synapse_s = 1e-5;
  t.fired = 17;
  w.on_tick(t);

  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    EXPECT_TRUE(json_valid(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  EXPECT_NE(os.str().find("\"type\":\"span\""), std::string::npos);
  EXPECT_NE(os.str().find("\"type\":\"tick\""), std::string::npos);
  EXPECT_NE(os.str().find("\"phase\":\"neuron\""), std::string::npos);
}

TEST(JsonlTraceWriter, IncludeMeasuredOffDropsHostTimes) {
  std::ostringstream os;
  obs::JsonlTraceWriter w(os, obs::JsonlOptions{.include_measured = false});
  w.on_span(sample_span());
  EXPECT_EQ(os.str().find("compute_s"), std::string::npos);
  EXPECT_NE(os.str().find("comm_s"), std::string::npos);
}

TEST(ChromeTraceWriter, ProducesLoadableTraceJson) {
  obs::ChromeTraceWriter w;
  obs::TickRecord t;
  t.tick = 0;
  t.synapse_s = 1e-5;
  t.neuron_s = 2e-5;
  t.network_s = 3e-5;
  w.on_tick(t);
  obs::SpanRecord s = sample_span();
  s.tick = 0;
  w.on_span(s);

  std::ostringstream os;
  w.write(os);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(os.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(os.str().find("rank 1"), std::string::npos);
}

TEST(ChromeTraceWriter, BoundedBufferDropsAndCountsExcessRecords) {
  // A multi-hour run must not grow the in-memory Chrome buffer without
  // bound: past the cap, records are dropped (spans and ticks alike, so the
  // retained prefix is coherent) and counted.
  obs::ChromeTraceWriter w(/*max_records=*/3);
  for (int i = 0; i < 5; ++i) {
    obs::SpanRecord s = sample_span();
    s.tick = static_cast<arch::Tick>(i);
    w.on_span(s);
  }
  obs::TickRecord t;
  t.tick = 5;
  w.on_tick(t);
  EXPECT_EQ(w.dropped(), 3u);

  std::ostringstream os;
  w.write(os);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
  // The emitted trace announces the truncation so a viewer-side reader
  // can't mistake the prefix for the whole run.
  EXPECT_NE(os.str().find("trace truncated"), std::string::npos);
  EXPECT_NE(os.str().find("3 records dropped"), std::string::npos);
}

TEST(ChromeTraceWriter, DefaultCapKeepsEverythingForShortRuns) {
  obs::ChromeTraceWriter w;
  w.on_span(sample_span());
  EXPECT_EQ(w.dropped(), 0u);
  std::ostringstream os;
  w.write(os);
  EXPECT_EQ(os.str().find("trace truncated"), std::string::npos);
}

// --- End-to-end wiring through Compass ------------------------------------

compiler::PccResult build_model(obs::MetricsRegistry* metrics = nullptr) {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  mopt.seed = 2012;
  compiler::PccOptions popt;
  popt.ranks = 3;
  popt.threads_per_rank = 2;
  return compiler::compile(cocomac::build_macaque_spec(mopt), popt, metrics);
}

TEST(CompassTrace, SpanAndTickRecordShapes) {
  compiler::PccResult pcc = build_model();
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Compass sim(pcc.model, pcc.partition, transport);
  obs::TraceBuffer buf;
  sim.add_trace_sink(&buf);
  const arch::Tick ticks = 20;
  const runtime::RunReport rep = sim.run(ticks);

  ASSERT_EQ(buf.ticks().size(), ticks);
  ASSERT_EQ(buf.spans().size(), ticks * 3u * 3u);  // ticks x ranks x phases

  // Per-tick sums of the functional counters reproduce the run report.
  std::uint64_t fired = 0, messages = 0, bytes = 0, local = 0, remote = 0;
  for (const obs::TickRecord& t : buf.ticks()) {
    fired += t.fired;
    messages += t.messages;
    bytes += t.bytes;
    local += t.local;
    remote += t.remote;
  }
  EXPECT_EQ(fired, rep.fired_spikes);
  EXPECT_EQ(messages, rep.messages);
  EXPECT_EQ(bytes, rep.wire_bytes);
  EXPECT_EQ(local, rep.local_spikes);
  EXPECT_EQ(remote, rep.remote_spikes);
}

TEST(CompassTrace, TracedPhaseTimesMatchPhaseBreakdownTotals) {
  compiler::PccResult pcc = build_model();
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Compass sim(pcc.model, pcc.partition, transport);
  obs::TraceBuffer buf;
  sim.add_trace_sink(&buf);
  const runtime::RunReport rep = sim.run(25);

  double synapse = 0.0, neuron = 0.0, network = 0.0;
  for (const obs::TickRecord& t : buf.ticks()) {
    synapse += t.synapse_s;
    neuron += t.neuron_s;
    network += t.network_s;
  }
  EXPECT_NEAR(synapse, rep.virtual_time.synapse, 1e-9);
  EXPECT_NEAR(neuron, rep.virtual_time.neuron, 1e-9);
  EXPECT_NEAR(network, rep.virtual_time.network, 1e-9);
}

TEST(CompassTrace, NeuronSpansSumToFiredSpikes) {
  compiler::PccResult pcc = build_model();
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Compass sim(pcc.model, pcc.partition, transport);
  obs::TraceBuffer buf;
  sim.add_trace_sink(&buf);
  const runtime::RunReport rep = sim.run(15);

  std::uint64_t fired = 0, sent_messages = 0, recv_messages = 0;
  for (const obs::SpanRecord& s : buf.spans()) {
    if (s.phase == obs::Phase::kNeuron) {
      fired += s.spikes;
      sent_messages += s.messages;
    }
    if (s.phase == obs::Phase::kNetwork) recv_messages += s.messages;
  }
  EXPECT_EQ(fired, rep.fired_spikes);
  EXPECT_EQ(sent_messages, rep.messages);
  EXPECT_EQ(recv_messages, rep.messages);  // every message is received once
}

TEST(CompassTrace, MultipleSinksAllReceiveRecords) {
  compiler::PccResult pcc = build_model();
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Compass sim(pcc.model, pcc.partition, transport);
  obs::TraceBuffer a, b;
  sim.add_trace_sink(&a);
  sim.add_trace_sink(&b);
  sim.run(5);
  EXPECT_EQ(a.ticks().size(), 5u);
  EXPECT_EQ(a.spans().size(), b.spans().size());
  EXPECT_TRUE(a.spans() == b.spans());
}

TEST(CompassMetrics, RuntimeTransportAndPccPublish) {
  obs::MetricsRegistry reg;
  compiler::PccResult pcc = build_model(&reg);
  comm::MpiTransport transport(3, comm::CommCostModel{});
  transport.set_metrics(&reg);
  runtime::Compass sim(pcc.model, pcc.partition, transport);
  sim.set_metrics(&reg);
  const runtime::RunReport rep = sim.run(18);

  ASSERT_FALSE(rep.metrics.empty());
  auto find = [&](const std::string& name) -> const obs::MetricValue& {
    for (const obs::MetricValue& m : rep.metrics) {
      if (m.name == name) return m;
    }
    ADD_FAILURE() << "metric not found: " << name;
    static const obs::MetricValue missing{};
    return missing;
  };

  EXPECT_EQ(find("run.ticks").count, rep.ticks);
  EXPECT_EQ(find("run.fired_spikes").count, rep.fired_spikes);
  EXPECT_EQ(find("run.local_spikes").count, rep.local_spikes);
  EXPECT_EQ(find("run.remote_spikes").count, rep.remote_spikes);
  EXPECT_EQ(find("comm.messages").count, rep.messages);
  EXPECT_EQ(find("comm.wire_bytes").count, rep.wire_bytes);
  EXPECT_EQ(find("comm.remote_spikes").count, rep.remote_spikes);
  EXPECT_EQ(find("tick.fired_spikes").observations, rep.ticks);
  EXPECT_EQ(find("tick.fired_spikes").sum, rep.fired_spikes);
  EXPECT_GT(find("pcc.white_connections").count, 0u);
  EXPECT_GT(find("pcc.gray_connections").count, 0u);
  EXPECT_NEAR(find("run.virtual_time_s").value, rep.virtual_total_s(), 1e-12);
}

TEST(CompassMetrics, DisabledRunCarriesNoSnapshot) {
  compiler::PccResult pcc = build_model();
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Compass sim(pcc.model, pcc.partition, transport);
  const runtime::RunReport rep = sim.run(3);
  EXPECT_TRUE(rep.metrics.empty());
}

}  // namespace
}  // namespace compass
