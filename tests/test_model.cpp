// Unit tests for Model: inventory, validation, region labels, and the
// explicit binary model file (the artifact PCC's in-situ compilation
// replaces at scale).
#include "arch/model.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace compass::arch {
namespace {

Model tiny_model(std::size_t cores = 4, std::uint64_t seed = 1) {
  Model m(cores, seed);
  for (CoreId c = 0; c < cores; ++c) {
    NeuronParams p;
    p.weights = {10, 0, 0, 0};
    p.threshold = 10;
    for (unsigned j = 0; j < kNeuronsPerCore; ++j) {
      m.core(c).configure_neuron(
          j, p,
          AxonTarget{static_cast<CoreId>((c + 1) % cores),
                     static_cast<std::uint8_t>(j), 1});
      m.core(c).set_synapse(j, j);
    }
  }
  return m;
}

TEST(Model, InventoryCountsCoresNeuronsSynapses) {
  Model m = tiny_model(4);
  const ModelInventory inv = m.inventory();
  EXPECT_EQ(inv.cores, 4u);
  EXPECT_EQ(inv.neurons, 4u * 256u);
  EXPECT_EQ(inv.synapses, 4u * 256u);  // identity crossbars
  EXPECT_EQ(inv.connected_neurons, 4u * 256u);
}

TEST(Model, EmptyModel) {
  Model m;
  EXPECT_EQ(m.num_cores(), 0u);
  EXPECT_EQ(m.inventory().cores, 0u);
  EXPECT_EQ(m.num_regions(), 0u);
  EXPECT_TRUE(m.validate().empty());
}

TEST(Model, ValidateAcceptsGoodModel) {
  EXPECT_EQ(tiny_model().validate(), "");
}

TEST(Model, ValidateCatchesTargetCoreOutOfRange) {
  Model m = tiny_model(2);
  m.core(0).configure_neuron(0, m.core(0).params_of(0), AxonTarget{99, 0, 1});
  const std::string err = m.validate();
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST(Model, ValidateCatchesBadDelay) {
  Model m = tiny_model(2);
  m.core(1).configure_neuron(3, m.core(1).params_of(3), AxonTarget{0, 0, 0});
  const std::string err = m.validate();
  EXPECT_NE(err.find("delay"), std::string::npos) << err;
}

TEST(Model, ValidateAcceptsUnconnectedNeurons) {
  Model m(1, 0);
  EXPECT_EQ(m.validate(), "");
}

TEST(Model, RegionLabelsRoundTrip) {
  Model m(6, 0);
  m.set_region(0, 2);
  m.set_region(5, 7);
  EXPECT_EQ(m.region(0), 2);
  EXPECT_EQ(m.region(5), 7);
  EXPECT_EQ(m.region(3), 0);
  EXPECT_EQ(m.num_regions(), 8u);  // max label + 1
}

TEST(Model, SeedDerivesDistinctCorePrngs) {
  Model m(3, 42);
  const auto a = m.core(0).prng().next_u64();
  const auto b = m.core(1).prng().next_u64();
  const auto c = m.core(2).prng().next_u64();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(Model, ReseedCoresRestoresInitialStreams) {
  Model m(2, 7);
  const auto first = m.core(0).prng().next_u64();
  m.core(0).prng().next_u64();
  m.reseed_cores();
  EXPECT_EQ(m.core(0).prng().next_u64(), first);
}

TEST(Model, SameSeedSameStreams) {
  Model a(2, 9), b(2, 9);
  EXPECT_EQ(a.core(1).prng().next_u64(), b.core(1).prng().next_u64());
}

TEST(Model, StreamSaveLoadRoundTrip) {
  Model m = tiny_model(3, 55);
  m.set_region(1, 4);
  std::stringstream ss;
  m.save(ss);
  const Model loaded = Model::load(ss);
  EXPECT_TRUE(m == loaded);
  EXPECT_EQ(loaded.seed(), 55u);
  EXPECT_EQ(loaded.region(1), 4);
}

TEST(Model, LoadRejectsGarbage) {
  std::stringstream ss;
  ss << "this is not a model file";
  EXPECT_THROW(Model::load(ss), std::runtime_error);
}

TEST(Model, LoadRejectsTruncated) {
  Model m = tiny_model(2);
  std::stringstream ss;
  m.save(ss);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream half(bytes);
  EXPECT_THROW(Model::load(half), std::runtime_error);
}

TEST(Model, FileSaveLoadRoundTrip) {
  Model m = tiny_model(2, 3);
  const std::string path = ::testing::TempDir() + "/compass_model_test.bin";
  ASSERT_TRUE(m.save_file(path));
  const Model loaded = Model::load_file(path);
  EXPECT_TRUE(m == loaded);
  std::remove(path.c_str());
}

TEST(Model, LoadFileMissingThrows) {
  EXPECT_THROW(Model::load_file("/nonexistent/compass.bin"), std::runtime_error);
}

TEST(Model, EqualityDetectsCrossbarDifference) {
  Model a = tiny_model(2), b = tiny_model(2);
  EXPECT_TRUE(a == b);
  b.core(0).set_synapse(0, 5, true);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace compass::arch
