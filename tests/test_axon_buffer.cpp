// Unit tests for the 16-slot axonal-delay ring buffer.
#include "arch/axon_buffer.h"

#include <gtest/gtest.h>

namespace compass::arch {
namespace {

TEST(AxonBuffer, StartsEmpty) {
  AxonBuffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.pending(), 0);
}

TEST(AxonBuffer, ScheduleThenDrainAtThatTick) {
  AxonBuffer b;
  b.schedule(42, 5);
  EXPECT_FALSE(b.empty());
  const util::Bits256 got = b.drain(5);
  EXPECT_TRUE(got.test(42));
  EXPECT_EQ(got.popcount(), 1);
  EXPECT_TRUE(b.empty());  // drain clears
}

TEST(AxonBuffer, DrainOtherSlotIsEmpty) {
  AxonBuffer b;
  b.schedule(1, 3);
  EXPECT_FALSE(b.drain(4).any());
  EXPECT_TRUE(b.drain(3).test(1));
}

TEST(AxonBuffer, SlotIndexWrapsMod16) {
  AxonBuffer b;
  b.schedule(7, 2);
  // Tick 18 maps to slot 2 (18 mod 16).
  EXPECT_TRUE(b.drain(18).test(7));
}

TEST(AxonBuffer, MultipleAxonsSameSlot) {
  AxonBuffer b;
  b.schedule(0, 9);
  b.schedule(128, 9);
  b.schedule(255, 9);
  const util::Bits256 got = b.drain(9);
  EXPECT_EQ(got.popcount(), 3);
  EXPECT_TRUE(got.test(0));
  EXPECT_TRUE(got.test(128));
  EXPECT_TRUE(got.test(255));
}

TEST(AxonBuffer, DuplicateDeliveryCollapsesToOneBit) {
  // Delivery is an OR: two spikes to the same (axon, slot) are one event —
  // this is what makes delivery order immaterial.
  AxonBuffer b;
  b.schedule(10, 4);
  b.schedule(10, 4);
  EXPECT_EQ(b.drain(4).popcount(), 1);
}

TEST(AxonBuffer, SlotsAreIndependentAcrossDelays) {
  AxonBuffer b;
  for (unsigned d = 0; d < kDelaySlots; ++d) b.schedule(d, d);
  for (unsigned d = 0; d < kDelaySlots; ++d) {
    const util::Bits256 got = b.drain(d);
    EXPECT_EQ(got.popcount(), 1) << d;
    EXPECT_TRUE(got.test(d));
  }
}

TEST(AxonBuffer, PeekDoesNotClear) {
  AxonBuffer b;
  b.schedule(5, 1);
  EXPECT_TRUE(b.peek(1).test(5));
  EXPECT_TRUE(b.peek(1).test(5));
  EXPECT_TRUE(b.drain(1).test(5));
  EXPECT_FALSE(b.peek(1).test(5));
}

TEST(AxonBuffer, PendingCountsAllSlots) {
  AxonBuffer b;
  b.schedule(0, 0);
  b.schedule(1, 5);
  b.schedule(2, 15);
  EXPECT_EQ(b.pending(), 3);
}

TEST(AxonBuffer, ClearEmptiesEverything) {
  AxonBuffer b;
  for (unsigned s = 0; s < kDelaySlots; ++s) b.schedule(s, s);
  b.clear();
  EXPECT_TRUE(b.empty());
}

TEST(AxonBuffer, MaxDelayDoesNotCollideWithCurrentTick) {
  // A spike sent at tick t with delay 15 lands in slot (t+15) & 15, which is
  // the slot drained at t-1 / t+15 — never the slot being drained at t.
  for (Tick t = 0; t < 32; ++t) {
    AxonBuffer b;
    const unsigned slot = static_cast<unsigned>((t + kMaxDelay) & (kDelaySlots - 1));
    EXPECT_NE(slot, static_cast<unsigned>(t & (kDelaySlots - 1)));
    b.schedule(0, slot);
    EXPECT_FALSE(b.drain(t).any());
    EXPECT_TRUE(b.drain(t + kMaxDelay).test(0));
  }
}

}  // namespace
}  // namespace compass::arch
