// Unit tests for the two communication substrates. A type-parameterised
// suite checks the Transport contract for both implementations; further
// suites check MPI- and PGAS-specific behaviour (envelopes + Reduce-Scatter
// counts vs landing zones + barrier).
#include "comm/transport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "comm/mpi_transport.h"
#include "comm/pgas_transport.h"

namespace compass::comm {
namespace {

using arch::WireSpike;

std::unique_ptr<Transport> make_transport(const std::string& kind, int ranks,
                                          unsigned wire_bytes = 20) {
  CommCostModel model;
  if (kind == "mpi") {
    return std::make_unique<MpiTransport>(ranks, model, wire_bytes);
  }
  return std::make_unique<PgasTransport>(ranks, model, wire_bytes);
}

/// Flatten everything `rank` received this tick into a sorted multiset.
std::vector<WireSpike> all_received(const Transport& t, int rank) {
  std::vector<WireSpike> out;
  for (const InMessage& m : t.received(rank)) {
    out.insert(out.end(), m.spikes.begin(), m.spikes.end());
  }
  std::sort(out.begin(), out.end(), [](const WireSpike& a, const WireSpike& b) {
    return std::tie(a.core, a.axon, a.slot) < std::tie(b.core, b.axon, b.slot);
  });
  return out;
}

class TransportContract : public ::testing::TestWithParam<std::string> {};

TEST_P(TransportContract, DeliversToTheRightRank) {
  auto t = make_transport(GetParam(), 3);
  t->begin_tick();
  const std::vector<WireSpike> to1 = {{10, 1, 2}, {11, 3, 4}};
  const std::vector<WireSpike> to2 = {{20, 5, 6}};
  t->send(0, 1, to1);
  t->send(0, 2, to2);
  t->exchange();
  EXPECT_EQ(all_received(*t, 1), to1);
  EXPECT_EQ(all_received(*t, 2), to2);
  EXPECT_TRUE(all_received(*t, 0).empty());
}

TEST_P(TransportContract, MultipleSourcesMergeAtReceiver) {
  auto t = make_transport(GetParam(), 4);
  t->begin_tick();
  t->send(0, 3, std::vector<WireSpike>{{1, 0, 0}});
  t->send(1, 3, std::vector<WireSpike>{{2, 0, 0}});
  t->send(2, 3, std::vector<WireSpike>{{3, 0, 0}});
  t->exchange();
  const auto got = all_received(*t, 3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].core, 1u);
  EXPECT_EQ(got[1].core, 2u);
  EXPECT_EQ(got[2].core, 3u);
  // Sources are identified per message.
  std::vector<int> srcs;
  for (const InMessage& m : t->received(3)) srcs.push_back(m.src);
  std::sort(srcs.begin(), srcs.end());
  EXPECT_EQ(srcs, (std::vector<int>{0, 1, 2}));
}

TEST_P(TransportContract, EmptySendIsDropped) {
  auto t = make_transport(GetParam(), 2);
  t->begin_tick();
  t->send(0, 1, {});
  t->exchange();
  EXPECT_TRUE(t->received(1).empty());
  EXPECT_EQ(t->tick_stats().messages, 0u);
}

TEST_P(TransportContract, StatsCountMessagesSpikesBytes) {
  auto t = make_transport(GetParam(), 3, /*wire_bytes=*/20);
  t->begin_tick();
  t->send(0, 1, std::vector<WireSpike>{{1, 0, 0}, {2, 0, 0}});
  t->send(2, 1, std::vector<WireSpike>{{3, 0, 0}});
  t->exchange();
  const TickCommStats& s = t->tick_stats();
  EXPECT_EQ(s.messages, 2u);
  EXPECT_EQ(s.remote_spikes, 3u);
  EXPECT_EQ(s.wire_bytes, 3u * 20u);
}

TEST_P(TransportContract, WireBytesFollowConfiguredSpikeSize) {
  auto t = make_transport(GetParam(), 2, /*wire_bytes=*/8);
  t->begin_tick();
  t->send(0, 1, std::vector<WireSpike>{{1, 0, 0}, {2, 0, 0}});
  t->exchange();
  EXPECT_EQ(t->tick_stats().wire_bytes, 16u);
}

TEST_P(TransportContract, TicksAreIndependent) {
  auto t = make_transport(GetParam(), 2);
  for (int tick = 0; tick < 5; ++tick) {
    t->begin_tick();
    t->send(0, 1, std::vector<WireSpike>{{static_cast<arch::CoreId>(tick), 0, 0}});
    t->exchange();
    const auto got = all_received(*t, 1);
    ASSERT_EQ(got.size(), 1u) << "tick " << tick;
    EXPECT_EQ(got[0].core, static_cast<arch::CoreId>(tick));
  }
}

TEST_P(TransportContract, SenderPaysSendTimeReceiverSyncs) {
  auto t = make_transport(GetParam(), 3);
  t->begin_tick();
  t->send(0, 1, std::vector<WireSpike>{{1, 0, 0}});
  t->exchange();
  EXPECT_GT(t->send_time(0), 0.0);
  EXPECT_DOUBLE_EQ(t->send_time(1), 0.0);
  EXPECT_DOUBLE_EQ(t->send_time(2), 0.0);
  // Everyone participates in the tick synchronisation.
  for (int r = 0; r < 3; ++r) EXPECT_GT(t->sync_time(r), 0.0);
}

TEST_P(TransportContract, BeginTickResetsTimesAndStats) {
  auto t = make_transport(GetParam(), 2);
  t->begin_tick();
  t->send(0, 1, std::vector<WireSpike>{{1, 0, 0}});
  t->exchange();
  t->begin_tick();
  EXPECT_EQ(t->tick_stats().messages, 0u);
  EXPECT_DOUBLE_EQ(t->send_time(0), 0.0);
  t->exchange();
  EXPECT_TRUE(t->received(1).empty());
}

TEST_P(TransportContract, LargeFanOutAllRanksToAllRanks) {
  const int ranks = 8;
  auto t = make_transport(GetParam(), ranks);
  t->begin_tick();
  for (int s = 0; s < ranks; ++s) {
    for (int d = 0; d < ranks; ++d) {
      if (s == d) continue;
      t->send(s, d,
              std::vector<WireSpike>{
                  {static_cast<arch::CoreId>(s * 100 + d), 0, 0}});
    }
  }
  t->exchange();
  EXPECT_EQ(t->tick_stats().messages,
            static_cast<std::uint64_t>(ranks * (ranks - 1)));
  for (int d = 0; d < ranks; ++d) {
    EXPECT_EQ(all_received(*t, d).size(), static_cast<std::size_t>(ranks - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(BothTransports, TransportContract,
                         ::testing::Values("mpi", "pgas"),
                         [](const auto& param_info) { return param_info.param; });

// --- MPI-specific ----------------------------------------------------------

TEST(MpiTransport, RecvCountsMatchReduceScatterSemantics) {
  CommCostModel model;
  MpiTransport t(4, model);
  t.begin_tick();
  t.send(0, 2, std::vector<WireSpike>{{1, 0, 0}});
  t.send(1, 2, std::vector<WireSpike>{{2, 0, 0}});
  t.send(3, 0, std::vector<WireSpike>{{3, 0, 0}});
  t.exchange();
  EXPECT_EQ(t.recv_counts()[0], 1u);
  EXPECT_EQ(t.recv_counts()[1], 0u);
  EXPECT_EQ(t.recv_counts()[2], 2u);
  EXPECT_EQ(t.recv_counts()[3], 0u);
}

TEST(MpiTransport, ReceiverPaysPerMessageCriticalSection) {
  CommCostModel model;
  MpiTransport t(3, model);
  t.begin_tick();
  t.send(0, 2, std::vector<WireSpike>{{1, 0, 0}});
  t.send(1, 2, std::vector<WireSpike>{{2, 0, 0}});
  t.exchange();
  // Two messages: recv time at least twice the per-message probe cost.
  EXPECT_GE(t.recv_time(2), 2 * model.params().mpi_probe_recv_s);
  EXPECT_DOUBLE_EQ(t.recv_time(0), 0.0);
}

TEST(MpiTransport, SyncUsesReduceScatterCost) {
  CommCostModel model;
  MpiTransport t(16, model);
  t.begin_tick();
  t.exchange();
  EXPECT_DOUBLE_EQ(t.sync_time(0), model.reduce_scatter_cost(16));
}

TEST(MpiTransport, IsTwoSided) {
  CommCostModel model;
  MpiTransport t(2, model);
  EXPECT_FALSE(t.one_sided());
  EXPECT_STREQ(t.name(), "MPI");
}

// --- PGAS-specific ----------------------------------------------------------

TEST(PgasTransport, SyncUsesBarrierCost) {
  CommCostModel model;
  PgasTransport t(16, model);
  t.begin_tick();
  t.exchange();
  EXPECT_DOUBLE_EQ(t.sync_time(0), model.barrier_cost(16));
  EXPECT_LT(t.sync_time(0), model.reduce_scatter_cost(16));
}

TEST(PgasTransport, NoReceiverSideCharge) {
  CommCostModel model;
  PgasTransport t(2, model);
  t.begin_tick();
  t.send(0, 1, std::vector<WireSpike>{{1, 0, 0}});
  t.exchange();
  // One-sided: data is in place at barrier exit; no matching cost.
  EXPECT_DOUBLE_EQ(t.recv_time(1), 0.0);
}

TEST(PgasTransport, MultiplePutsFromSameSourceCoalesceInSegment) {
  CommCostModel model;
  PgasTransport t(2, model);
  t.begin_tick();
  t.send(0, 1, std::vector<WireSpike>{{1, 0, 0}});
  t.send(0, 1, std::vector<WireSpike>{{2, 0, 0}});
  t.exchange();
  // Two puts, one landing segment -> a single received message view.
  EXPECT_EQ(t.tick_stats().messages, 2u);
  ASSERT_EQ(t.received(1).size(), 1u);
  EXPECT_EQ(t.received(1)[0].spikes.size(), 2u);
}

TEST(PgasTransport, IsOneSided) {
  CommCostModel model;
  PgasTransport t(2, model);
  EXPECT_TRUE(t.one_sided());
  EXPECT_STREQ(t.name(), "PGAS");
}

TEST(PgasTransport, CheaperNetworkPhaseThanMpiForSameTraffic) {
  // The structural claim behind figure 7, at the cost-model level: for the
  // same spike traffic, PGAS per-rank comm time (send+sync+recv) is lower.
  CommCostModel model;
  const int ranks = 8;
  MpiTransport mpi(ranks, model);
  PgasTransport pgas(ranks, model);
  for (Transport* t : {static_cast<Transport*>(&mpi), static_cast<Transport*>(&pgas)}) {
    t->begin_tick();
    for (int s = 0; s < ranks; ++s) {
      for (int d = 0; d < ranks; ++d) {
        if (s != d) {
          t->send(s, d, std::vector<WireSpike>{{7, 0, 0}, {8, 0, 0}});
        }
      }
    }
    t->exchange();
  }
  for (int r = 0; r < ranks; ++r) {
    const double mpi_total = mpi.send_time(r) + mpi.sync_time(r) + mpi.recv_time(r);
    const double pgas_total =
        pgas.send_time(r) + pgas.sync_time(r) + pgas.recv_time(r);
    EXPECT_LT(pgas_total, mpi_total) << "rank " << r;
  }
}

}  // namespace
}  // namespace compass::comm
