// Wall-clock observability plane lockdown (`ctest -L obs-wall`).
//
// Three contracts:
//   * Aggregation math (WallPhaseStats, TickRateWindow, the progress-line
//     formatter) is exact and deterministic — driven with synthetic clocks,
//     no real timers.
//   * Attaching a WallProfiler never perturbs the functional output: the
//     determinism suite's byte-identity comparison must hold between a
//     profiled and an unprofiled run, across transports and the parallel
//     rank loop.
//   * The real-timer path round-trips: a profiled run writes a summary that
//     analyze_wallprof parses back to the same totals, and the measured
//     instrumentation cost stays a small fraction of the run it measures
//     (generous bound — CI machines are noisy, the 2% target is enforced on
//     bench_headline where ticks are long enough to average).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "arch/kernels.h"
#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "comm/pgas_transport.h"
#include "compiler/pcc.h"
#include "obs/trace.h"
#include "obs/wallprof.h"
#include "runtime/compass.h"
#include "util/stopwatch.h"

namespace compass {
namespace {

// --- WallPhaseStats ---------------------------------------------------------

TEST(WallPhaseStats, ObserveTracksMinMeanMax) {
  obs::WallPhaseStats s;
  s.observe(2e-3);
  s.observe(4e-3);
  s.observe(6e-3);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.total_s, 12e-3);
  EXPECT_DOUBLE_EQ(s.min_s, 2e-3);
  EXPECT_DOUBLE_EQ(s.max_s, 6e-3);
  EXPECT_DOUBLE_EQ(s.mean_s(), 4e-3);
}

TEST(WallPhaseStats, HistogramBucketsArePowerOfTwoMicroseconds) {
  obs::WallPhaseStats s;
  s.observe(0.5e-6);   // sub-microsecond -> bucket 0
  s.observe(1.5e-6);   // 1 us -> bit_width(1) = 1
  s.observe(3e-6);     // 3 us -> bit_width(3) = 2
  s.observe(100e-6);   // 100 us -> bit_width(100) = 7
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[7], 1u);
  std::uint64_t total = 0;
  for (const std::uint64_t b : s.buckets) total += b;
  EXPECT_EQ(total, s.count);
}

TEST(WallPhaseStats, MergeCombinesEverything) {
  obs::WallPhaseStats a, b;
  a.observe(1e-3);
  a.observe(5e-3);
  b.observe(2e-3);
  b.observe(9e-3);
  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_DOUBLE_EQ(a.total_s, 17e-3);
  EXPECT_DOUBLE_EQ(a.min_s, 1e-3);
  EXPECT_DOUBLE_EQ(a.max_s, 9e-3);
}

TEST(WallPhaseStats, MergeIntoEmptyTakesOtherMin) {
  obs::WallPhaseStats a, b;
  b.observe(3e-3);
  a.merge(b);
  EXPECT_EQ(a.count, 1u);
  EXPECT_DOUBLE_EQ(a.min_s, 3e-3);
}

// --- TickRateWindow ---------------------------------------------------------

TEST(TickRateWindow, ZeroUntilTwoSamples) {
  obs::TickRateWindow w(8);
  EXPECT_DOUBLE_EQ(w.ticks_per_second(), 0.0);
  w.add(1, 0.1);
  EXPECT_DOUBLE_EQ(w.ticks_per_second(), 0.0);
  w.add(2, 0.2);
  EXPECT_NEAR(w.ticks_per_second(), 10.0, 1e-9);
}

TEST(TickRateWindow, RateSpansTheWholeWindow) {
  obs::TickRateWindow w(4);
  // 1 tick per 0.5 s, constant.
  for (std::uint64_t t = 1; t <= 10; ++t) {
    w.add(t, 0.5 * static_cast<double>(t));
  }
  EXPECT_EQ(w.size(), 4u);
  EXPECT_NEAR(w.ticks_per_second(), 2.0, 1e-9);
}

TEST(TickRateWindow, WindowForgetsOldRates) {
  obs::TickRateWindow w(3);
  // Slow start, then 100 ticks/s; once the slow samples rotate out the
  // estimate must reflect only the fast regime.
  w.add(1, 1.0);
  w.add(2, 2.0);
  w.add(3, 2.01);
  w.add(4, 2.02);
  w.add(5, 2.03);
  EXPECT_NEAR(w.ticks_per_second(), 100.0, 1e-6);
}

TEST(TickRateWindow, ClearResets) {
  obs::TickRateWindow w(4);
  w.add(1, 0.1);
  w.add(2, 0.2);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.ticks_per_second(), 0.0);
}

// --- Progress formatting ----------------------------------------------------

TEST(ProgressLine, KnownSnapshotFormatsAllFields) {
  obs::ProgressSnapshot snap;
  snap.tick = 120;
  snap.total_ticks = 500;
  snap.ticks_per_second = 813.25;
  snap.eta_s = 0.47;
  snap.rss_bytes = 123u * 1024 * 1024;
  const std::string line = obs::format_progress_line(snap);
  EXPECT_NE(line.find("120/500"), std::string::npos) << line;
  EXPECT_NE(line.find("24.0%"), std::string::npos) << line;
  EXPECT_NE(line.find("ticks/s"), std::string::npos) << line;
  EXPECT_NE(line.find("ETA"), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << "single line, no newline";
}

TEST(ProgressLine, UnknownTotalOmitsPercentAndEta) {
  obs::ProgressSnapshot snap;
  snap.tick = 7;
  snap.total_ticks = 0;
  snap.ticks_per_second = 5.0;
  const std::string line = obs::format_progress_line(snap);
  EXPECT_EQ(line.find('%'), std::string::npos) << line;
  EXPECT_EQ(line.find("ETA"), std::string::npos) << line;
}

TEST(ProgressMeter, ThrottlesToIntervalAndRewritesInPlace) {
  std::ostringstream os;
  obs::ProgressMeter meter(os, /*interval_s=*/1.0);
  // Ticks arrive every 0.25 s: only every 4th lands past the interval.
  for (std::uint64_t t = 1; t <= 16; ++t) {
    meter.update_at(t, 16, 0.25 * static_cast<double>(t));
  }
  EXPECT_GE(meter.lines_emitted(), 3u);
  EXPECT_LE(meter.lines_emitted(), 5u);
  const std::string out = os.str();
  EXPECT_EQ(out.find('\n'), std::string::npos)
      << "no newline before finish(): " << out;
  EXPECT_NE(out.find('\r'), std::string::npos);
  meter.finish();
  EXPECT_NE(os.str().find('\n'), std::string::npos);
}

TEST(ProgressMeter, FinishWithoutUpdatesEmitsNothing) {
  std::ostringstream os;
  obs::ProgressMeter meter(os);
  meter.finish();
  EXPECT_TRUE(os.str().empty());
}

// --- WallProfiler unit behavior ---------------------------------------------

TEST(WallProfiler, RejectsNonPositiveRankCount) {
  EXPECT_THROW(obs::WallProfiler(0), std::invalid_argument);
  EXPECT_THROW(obs::WallProfiler(-3), std::invalid_argument);
}

TEST(WallProfiler, AccumulatesPerRankAndGlobalPhases) {
  obs::WallProfiler prof(2);
  prof.record(0, obs::WallPhase::kSynapse, 1e-3);
  prof.record(1, obs::WallPhase::kSynapse, 3e-3);
  prof.record(0, obs::WallPhase::kNeuron, 2e-3);
  prof.add_virtual(0, obs::WallPhase::kSynapse, 10e-3);
  prof.record_global(obs::WallPhase::kCheckpoint, 7e-3);
  const obs::WallprofSummary sum = prof.summary();
  EXPECT_DOUBLE_EQ(sum.phase_wall_s(obs::WallPhase::kSynapse), 4e-3);
  EXPECT_DOUBLE_EQ(sum.phase_wall_s(obs::WallPhase::kNeuron), 2e-3);
  EXPECT_DOUBLE_EQ(sum.phase_wall_s(obs::WallPhase::kCheckpoint), 7e-3);
  EXPECT_DOUBLE_EQ(sum.phase_virtual_s(obs::WallPhase::kSynapse), 10e-3);
  EXPECT_EQ(sum.ranks, 2);
  EXPECT_GT(prof.timer_ops(), 0u);
  EXPECT_GE(prof.overhead_s(), 0.0);
}

TEST(WallProfiler, TickLoopAdvancesCountAndWallTime) {
  obs::WallProfiler prof(1);
  for (std::uint64_t t = 0; t < 5; ++t) {
    prof.begin_tick();
    prof.end_tick(t);
  }
  EXPECT_EQ(prof.ticks(), 5u);
  EXPECT_GE(prof.wall_total_s(), 0.0);
  const obs::WallprofSummary sum = prof.summary();
  EXPECT_EQ(sum.ticks, 5u);
}

TEST(WallProfiler, HeartbeatCadenceEmitsRecords) {
  std::ostringstream os;
  obs::WallprofOptions opt;
  opt.heartbeat_every_ticks = 2;
  obs::WallProfiler prof(1, opt);
  prof.set_sink(&os);
  for (std::uint64_t t = 0; t < 6; ++t) {
    prof.begin_tick();
    prof.end_tick(t);
  }
  const std::string out = os.str();
  std::size_t beats = 0;
  for (std::size_t at = out.find("wallheartbeat"); at != std::string::npos;
       at = out.find("wallheartbeat", at + 1)) {
    ++beats;
  }
  EXPECT_EQ(beats, 3u);
  EXPECT_EQ(out.find("\"type\":\"wallprof\""), std::string::npos)
      << "summary only on write_summary()";
}

TEST(WallProfiler, SummaryJsonRoundTripsThroughAnalyzer) {
  std::ostringstream os;
  obs::WallprofOptions opt;
  opt.heartbeat_every_ticks = 2;
  obs::WallProfiler prof(2, opt);
  prof.set_sink(&os);
  for (std::uint64_t t = 0; t < 4; ++t) {
    prof.begin_tick();
    prof.record(0, obs::WallPhase::kSynapse, 1e-3);
    prof.record(1, obs::WallPhase::kNeuron, 2e-3);
    prof.add_virtual(1, obs::WallPhase::kNeuron, 4e-3);
    prof.end_tick(t);
  }
  prof.record_global(obs::WallPhase::kPccCompile, 0.5);
  obs::KernelDispatchCounts kc;
  kc.synapse_bitparallel = 17;
  kc.neuron_stoch_soa = 99;
  prof.note_kernel_counts(kc);
  prof.write_summary();

  std::istringstream is(os.str());
  const obs::WallReport report = obs::analyze_wallprof(is);
  ASSERT_TRUE(report.found);
  EXPECT_EQ(report.summary.ranks, 2);
  EXPECT_EQ(report.summary.ticks, 4u);
  EXPECT_EQ(report.heartbeats, 2u);
  EXPECT_DOUBLE_EQ(report.summary.phase_wall_s(obs::WallPhase::kSynapse),
                   4e-3);
  EXPECT_DOUBLE_EQ(report.summary.phase_wall_s(obs::WallPhase::kNeuron), 8e-3);
  EXPECT_DOUBLE_EQ(report.summary.phase_virtual_s(obs::WallPhase::kNeuron),
                   16e-3);
  EXPECT_DOUBLE_EQ(report.summary.phase_wall_s(obs::WallPhase::kPccCompile),
                   0.5);
  EXPECT_EQ(report.summary.kernels.synapse_bitparallel, 17u);
  EXPECT_EQ(report.summary.kernels.neuron_stoch_soa, 99u);
  // The analyzer's reports must render without throwing.
  std::ostringstream text, json;
  obs::write_wall_report(text, report);
  obs::write_wall_report_json(json, report);
  EXPECT_NE(text.str().find("wall-clock profile"), std::string::npos);
  EXPECT_NE(json.str().find("\"wallprof\""), std::string::npos);
}

TEST(WallProfiler, AnalyzerRejectsCaptureWithoutSummary) {
  std::istringstream empty("");
  EXPECT_THROW(obs::analyze_wallprof(empty), std::runtime_error);
  std::istringstream beats_only(
      "{\"type\":\"wallheartbeat\",\"tick\":1,\"ticks\":2,\"wall_s\":0.1,"
      "\"ticks_per_second\":20,\"rss_bytes\":0}\n");
  EXPECT_THROW(obs::analyze_wallprof(beats_only), std::runtime_error);
}

// --- Integration with the simulator ----------------------------------------

compiler::PccResult build_fixed_model() {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  mopt.seed = 2012;
  compiler::PccOptions popt;
  popt.ranks = 3;
  popt.threads_per_rank = 2;
  return compiler::compile(cocomac::build_macaque_spec(mopt), popt);
}

struct TracedRun {
  runtime::RunReport report;
  std::string trace_jsonl;
  std::string wallprof_jsonl;  // empty when no profiler was attached
};

TracedRun run_once(const compiler::PccResult& pcc, bool with_wallprof,
                   bool use_pgas, bool parallel) {
  arch::Model model = pcc.model;
  std::unique_ptr<comm::Transport> transport;
  if (use_pgas) {
    transport = std::make_unique<comm::PgasTransport>(pcc.partition.ranks(),
                                                      comm::CommCostModel{});
  } else {
    transport = std::make_unique<comm::MpiTransport>(pcc.partition.ranks(),
                                                     comm::CommCostModel{});
  }
  runtime::Config cfg;
  cfg.parallel_execution = parallel;
  cfg.measure = false;  // modelled times only: the trace is reproducible
  runtime::Compass sim(model, pcc.partition, *transport, cfg);

  std::ostringstream trace_os;
  obs::JsonlTraceWriter writer(trace_os,
                               obs::JsonlOptions{.include_measured = false});
  sim.add_trace_sink(&writer);

  std::ostringstream wall_os;
  std::optional<obs::WallProfiler> wallprof;
  if (with_wallprof) {
    obs::WallprofOptions opt;
    opt.heartbeat_every_ticks = 8;
    wallprof.emplace(pcc.partition.ranks(), opt);
    wallprof->set_sink(&wall_os);
    sim.set_wall_profiler(&*wallprof);
  }

  TracedRun out;
  out.report = sim.run(40);
  if (wallprof) {
    wallprof->write_summary();
    out.wallprof_jsonl = wall_os.str();
  }
  out.trace_jsonl = trace_os.str();
  return out;
}

TEST(WallprofDeterminism, AttachedProfilerLeavesTraceByteIdentical) {
  const compiler::PccResult pcc = build_fixed_model();
  for (const bool pgas : {false, true}) {
    for (const bool parallel : {false, true}) {
      const TracedRun plain = run_once(pcc, /*with_wallprof=*/false, pgas,
                                       parallel);
      const TracedRun profiled = run_once(pcc, /*with_wallprof=*/true, pgas,
                                          parallel);
      ASSERT_FALSE(plain.trace_jsonl.empty());
      EXPECT_EQ(plain.trace_jsonl, profiled.trace_jsonl)
          << "wallprof perturbed the functional trace (pgas=" << pgas
          << ", parallel=" << parallel << ")";
      EXPECT_EQ(plain.report.fired_spikes, profiled.report.fired_spikes);
      EXPECT_EQ(plain.report.wire_bytes, profiled.report.wire_bytes);
      EXPECT_FALSE(profiled.wallprof_jsonl.empty());
      EXPECT_EQ(plain.trace_jsonl.find("wallprof"), std::string::npos)
          << "wall records must never ride a trace sink";
    }
  }
}

TEST(WallprofIntegration, SimRunProducesAttributedSummary) {
  const compiler::PccResult pcc = build_fixed_model();
  const TracedRun run = run_once(pcc, /*with_wallprof=*/true, /*use_pgas=*/false,
                                 /*parallel=*/false);
  std::istringstream is(run.wallprof_jsonl);
  const obs::WallReport report = obs::analyze_wallprof(is);
  ASSERT_TRUE(report.found);
  EXPECT_EQ(report.summary.ranks, 3);
  EXPECT_EQ(report.summary.ticks, 40u);
  EXPECT_GT(report.summary.wall_s, 0.0);
  EXPECT_GT(report.summary.ticks_per_second, 0.0);
  // Every tick crossed the compute phases: wall time must be attributed.
  EXPECT_GT(report.summary.phase_wall_s(obs::WallPhase::kSynapse), 0.0);
  EXPECT_GT(report.summary.phase_wall_s(obs::WallPhase::kNeuron), 0.0);
  EXPECT_GT(report.summary.phase_wall_s(obs::WallPhase::kExchange), 0.0);
  // Modelled comm charges flow in as virtual seconds even with measure off.
  EXPECT_GT(report.summary.phase_virtual_s(obs::WallPhase::kSend), 0.0);
  // The simulator reported the kernel-dispatch delta for the run.
  const obs::KernelDispatchCounts& kc = report.summary.kernels;
  EXPECT_GT(kc.synapse_bitparallel + kc.synapse_scalar, 0u);
  EXPECT_GT(kc.neuron_fast + kc.neuron_stoch_soa + kc.neuron_scalar, 0u);
  EXPECT_EQ(report.heartbeats, 5u);  // 40 ticks / heartbeat_every=8
}

TEST(WallprofIntegration, RankCountMismatchThrows) {
  const compiler::PccResult pcc = build_fixed_model();
  arch::Model model = pcc.model;
  comm::MpiTransport transport(pcc.partition.ranks(), comm::CommCostModel{});
  runtime::Compass sim(model, pcc.partition, transport, runtime::Config{});
  obs::WallProfiler wrong(pcc.partition.ranks() + 1);
  EXPECT_THROW(sim.set_wall_profiler(&wrong), std::invalid_argument);
}

TEST(WallprofIntegration, MeasuredOverheadStaysSmall) {
  // The estimate must stay a small fraction of the run it measures. The
  // bound is deliberately generous (25% on a sub-second toy run; the <2%
  // acceptance target is checked on bench_headline, whose ticks are long
  // enough to average) — this test exists to catch pathological regressions
  // like an unconditional clock read per neuron, not to measure precisely.
  const compiler::PccResult pcc = build_fixed_model();
  const TracedRun run = run_once(pcc, /*with_wallprof=*/true, /*use_pgas=*/false,
                                 /*parallel=*/false);
  std::istringstream is(run.wallprof_jsonl);
  const obs::WallReport report = obs::analyze_wallprof(is);
  ASSERT_TRUE(report.found);
  ASSERT_GT(report.summary.wall_s, 0.0);
  EXPECT_LT(report.summary.overhead_s, 0.25 * report.summary.wall_s)
      << "instrumentation cost " << report.summary.overhead_s << "s of "
      << report.summary.wall_s << "s wall";
  // Attribution sanity: timer op count matches the instrumented sites'
  // cadence — at least one op per tick, nowhere near one per neuron.
  EXPECT_GE(report.summary.timer_ops, 40u);
  EXPECT_LT(report.summary.timer_ops, 40u * 1000u);
}

}  // namespace
}  // namespace compass
