// Unit tests for the neurosynaptic core: crossbar propagation, the
// synapse/neuron phase protocol, determinism, and checkpointing.
#include "arch/core.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "arch/model.h"

namespace compass::arch {
namespace {

NeuronParams relay_params(std::int32_t threshold = 100) {
  NeuronParams p;
  p.weights = {static_cast<std::int16_t>(threshold), 0, 0, 0};
  p.threshold = threshold;
  p.reset_value = 0;
  p.floor = 0;
  return p;
}

struct Emitted {
  unsigned neuron;
  AxonTarget target;
};

std::vector<Emitted> run_neuron_phase(NeurosynapticCore& core, Tick t) {
  std::vector<Emitted> out;
  core.neuron_phase(t, [&](unsigned j, const AxonTarget& tgt) {
    out.push_back({j, tgt});
  });
  return out;
}

TEST(Core, SynapsePhaseEmptyBufferIsNoOp) {
  NeurosynapticCore core;
  EXPECT_EQ(core.synapse_phase(0).active_axons, 0);
  for (unsigned j = 0; j < kNeuronsPerCore; ++j) {
    EXPECT_EQ(core.pending_input(j), 0);
  }
}

TEST(Core, SpikePropagatesAlongRow) {
  NeurosynapticCore core;
  core.set_axon_type(3, 0);
  core.set_synapse(3, 10);
  core.set_synapse(3, 20);
  NeuronParams p = relay_params();
  core.configure_neuron(10, p, {});
  core.configure_neuron(20, p, {});

  core.deliver(3, 0);
  const auto activity = core.synapse_phase(0);
  EXPECT_EQ(activity.active_axons, 1);
  EXPECT_EQ(activity.synaptic_events, 2);
  EXPECT_EQ(core.pending_input(10), 100);
  EXPECT_EQ(core.pending_input(20), 100);
  EXPECT_EQ(core.pending_input(11), 0);
}

TEST(Core, AxonTypeSelectsWeight) {
  NeurosynapticCore core;
  NeuronParams p;
  p.weights = {1, 2, 3, 4};
  p.threshold = 1000;
  core.configure_neuron(0, p, {});
  for (unsigned g = 0; g < kAxonTypes; ++g) {
    core.set_axon_type(g, static_cast<std::uint8_t>(g));
    core.set_synapse(g, 0);
    core.deliver(g, g);  // slot g, one at a time
  }
  std::int32_t expect = 0;
  for (unsigned g = 0; g < kAxonTypes; ++g) {
    core.synapse_phase(g);
    expect += static_cast<std::int32_t>(g + 1);
    EXPECT_EQ(core.pending_input(0), expect);
    run_neuron_phase(core, g);  // consumes accumulator into potential
    expect = 0;
    core.set_potential(0, 0);
  }
}

TEST(Core, MultipleActiveAxonsAccumulate) {
  NeurosynapticCore core;
  NeuronParams p;
  p.weights = {5, 0, 0, 0};
  p.threshold = 1000;
  core.configure_neuron(7, p, {});
  for (unsigned a = 0; a < 10; ++a) {
    core.set_synapse(a, 7);
    core.deliver(a, 2);
  }
  EXPECT_EQ(core.synapse_phase(2).active_axons, 10);
  EXPECT_EQ(core.pending_input(7), 50);
}

TEST(Core, NeuronPhaseFiresAndEmitsTarget) {
  NeurosynapticCore core;
  const AxonTarget target{42, 17, 3};
  core.configure_neuron(5, relay_params(), target);
  core.set_axon_type(0, 0);
  core.set_synapse(0, 5);
  core.deliver(0, 0);
  core.synapse_phase(0);
  const auto emitted = run_neuron_phase(core, 0);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].neuron, 5u);
  EXPECT_EQ(emitted[0].target, target);
}

TEST(Core, EmitOrderIsAscendingNeuronIndex) {
  NeurosynapticCore core;
  for (unsigned j : {200u, 3u, 77u}) {
    core.configure_neuron(j, relay_params(), AxonTarget{1, 0, 1});
    core.set_potential(j, 100);
  }
  const auto emitted = run_neuron_phase(core, 0);
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(emitted[0].neuron, 3u);
  EXPECT_EQ(emitted[1].neuron, 77u);
  EXPECT_EQ(emitted[2].neuron, 200u);
}

TEST(Core, UnconnectedFiringNeuronIsEmittedWithInvalidTarget) {
  NeurosynapticCore core;
  core.configure_neuron(0, relay_params(), {});
  core.set_potential(0, 100);
  const auto emitted = run_neuron_phase(core, 0);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_FALSE(emitted[0].target.connected());
}

TEST(Core, AccumulatorClearedAfterNeuronPhase) {
  NeurosynapticCore core;
  NeuronParams p;
  p.weights = {10, 0, 0, 0};
  p.threshold = 1000;
  core.configure_neuron(0, p, {});
  core.set_synapse(0, 0);
  core.deliver(0, 0);
  core.synapse_phase(0);
  EXPECT_EQ(core.pending_input(0), 10);
  run_neuron_phase(core, 0);
  EXPECT_EQ(core.pending_input(0), 0);
  EXPECT_EQ(core.potential(0), 10);  // moved into the membrane
}

TEST(Core, FullTickPipelineRelaysWithDelay) {
  // Spike on axon 9 at tick 4 -> neuron 9 fires at tick 4 -> (delay 2) its
  // own axon 9 sees the spike again at tick 6 (self-loop core).
  NeurosynapticCore core;
  core.set_axon_type(9, 0);
  core.set_synapse(9, 9);
  core.configure_neuron(9, relay_params(), AxonTarget{0, 9, 2});

  core.deliver(9, 4 & 15);
  int fired_at_4 = 0, fired_at_5 = 0, fired_at_6 = 0;
  for (Tick t = 4; t <= 6; ++t) {
    core.synapse_phase(t);
    const auto emitted = run_neuron_phase(core, t);
    for (const Emitted& e : emitted) {
      // Runtime would route; emulate local delivery to self.
      core.deliver(e.target.axon,
                   static_cast<unsigned>((t + e.target.delay) & 15));
      if (t == 4) ++fired_at_4;
      if (t == 5) ++fired_at_5;
      if (t == 6) ++fired_at_6;
    }
  }
  EXPECT_EQ(fired_at_4, 1);
  EXPECT_EQ(fired_at_5, 0);
  EXPECT_EQ(fired_at_6, 1);
}

TEST(Core, DeliveryOrderDoesNotChangeResult) {
  // Two identical cores, spikes delivered in different orders, stochastic
  // neurons: traces must match exactly (the property that makes transports
  // and thread interleavings equivalent).
  auto build = [] {
    NeurosynapticCore core;
    core.reseed(77);
    NeuronParams p;
    p.weights = {120, 0, 0, 0};
    p.threshold = 100;
    p.flags = kStochasticSynapse | kStochasticLeak;
    p.leak = -10;
    p.floor = 0;
    for (unsigned j = 0; j < kNeuronsPerCore; ++j) {
      core.configure_neuron(j, p, {});
      core.set_synapse(j, j);
    }
    return core;
  };
  NeurosynapticCore a = build();
  NeurosynapticCore b = build();

  for (unsigned axon : {5u, 250u, 17u}) a.deliver(axon, 0);
  for (unsigned axon : {17u, 5u, 250u}) b.deliver(axon, 0);

  for (Tick t = 0; t < 4; ++t) {
    a.synapse_phase(t);
    b.synapse_phase(t);
    const auto ea = run_neuron_phase(a, t);
    const auto eb = run_neuron_phase(b, t);
    ASSERT_EQ(ea.size(), eb.size()) << "tick " << t;
  }
  for (unsigned j = 0; j < kNeuronsPerCore; ++j) {
    EXPECT_EQ(a.potential(j), b.potential(j));
  }
}

TEST(Core, StochasticSynapseDrawsInFixedAxonNeuronOrder) {
  // Same spikes => same PRNG consumption regardless of how deliver() calls
  // were ordered; verify via final PRNG state.
  auto build = [] {
    NeurosynapticCore core;
    core.reseed(123);
    NeuronParams p;
    p.weights = {100, 0, 0, 0};
    p.threshold = 10000;
    p.flags = kStochasticSynapse;
    for (unsigned j = 0; j < 8; ++j) {
      core.configure_neuron(j, p, {});
      for (unsigned a = 0; a < 8; ++a) core.set_synapse(a, j);
    }
    return core;
  };
  NeurosynapticCore a = build(), b = build();
  for (unsigned axon = 0; axon < 8; ++axon) a.deliver(axon, 0);
  for (unsigned axon = 8; axon-- > 0;) b.deliver(axon, 0);
  a.synapse_phase(0);
  b.synapse_phase(0);
  EXPECT_EQ(a.prng().state(), b.prng().state());
  for (unsigned j = 0; j < 8; ++j) {
    EXPECT_EQ(a.pending_input(j), b.pending_input(j));
  }
}

TEST(Core, SaveLoadRoundTripsExactly) {
  NeurosynapticCore core;
  core.reseed(999);
  NeuronParams p;
  p.weights = {3, -4, 5, -6};
  p.leak = 2;
  p.threshold = 50;
  p.reset_value = -7;
  p.floor = -100;
  p.reset_mode = ResetMode::kLinear;
  p.flags = kStochasticThreshold;
  p.threshold_mask_bits = 3;
  for (unsigned j = 0; j < kNeuronsPerCore; ++j) {
    core.configure_neuron(j, p, AxonTarget{j, static_cast<std::uint8_t>(j), 5});
    core.set_potential(j, static_cast<std::int32_t>(j) - 50);
  }
  for (unsigned a = 0; a < kAxonsPerCore; a += 3) {
    core.set_axon_type(a, 2);
    core.set_synapse(a, (a * 7) % 256);
    core.deliver(a, a % 16);
  }
  core.prng().next_u64();  // advance PRNG so its state is non-trivial

  std::stringstream ss;
  core.save(ss);
  NeurosynapticCore loaded;
  loaded.load(ss);
  EXPECT_TRUE(core == loaded);

  // Loaded copy must continue the simulation identically.
  core.synapse_phase(0);
  loaded.synapse_phase(0);
  const auto ea = run_neuron_phase(core, 0);
  const auto eb = run_neuron_phase(loaded, 0);
  EXPECT_EQ(ea.size(), eb.size());
  EXPECT_EQ(core.prng().state(), loaded.prng().state());
}

TEST(Core, ParamsOfRoundTripsConfiguration) {
  NeurosynapticCore core;
  NeuronParams p;
  p.weights = {9, -9, 1, -1};
  p.leak = -3;
  p.threshold = 77;
  p.reset_value = 4;
  p.floor = -44;
  p.reset_mode = ResetMode::kNone;
  p.flags = kStochasticLeak | kStochasticThreshold;
  p.threshold_mask_bits = 5;
  core.configure_neuron(13, p, {});
  const NeuronParams q = core.params_of(13);
  EXPECT_EQ(q.weights, p.weights);
  EXPECT_EQ(q.leak, p.leak);
  EXPECT_EQ(q.threshold, p.threshold);
  EXPECT_EQ(q.reset_value, p.reset_value);
  EXPECT_EQ(q.floor, p.floor);
  EXPECT_EQ(q.reset_mode, p.reset_mode);
  EXPECT_EQ(q.flags, p.flags);
  EXPECT_EQ(q.threshold_mask_bits, p.threshold_mask_bits);
}

}  // namespace
}  // namespace compass::arch
