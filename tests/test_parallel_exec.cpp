// Tests for the OpenMP parallel-execution mode: functional results must be
// identical to serial execution (per-rank state is disjoint and spike
// delivery is order-independent), and hooks must force serial execution.
#include <gtest/gtest.h>

#include <vector>

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "compiler/pcc.h"
#include "runtime/compass.h"

namespace compass::runtime {
namespace {

compiler::PccResult build(std::uint64_t cores = 96, int ranks = 4) {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = cores;
  compiler::PccOptions popt;
  popt.ranks = ranks;
  popt.threads_per_rank = 2;
  return compiler::compile(cocomac::build_macaque_spec(mopt), popt);
}

RunReport run_mode(const compiler::PccResult& pcc, bool parallel,
                   arch::Model* final_model = nullptr) {
  arch::Model model = pcc.model;
  comm::MpiTransport transport(pcc.partition.ranks(), comm::CommCostModel{});
  Config cfg;
  cfg.parallel_execution = parallel;
  Compass sim(model, pcc.partition, transport, cfg);
  const RunReport rep = sim.run(60);
  if (final_model != nullptr) *final_model = model;
  return rep;
}

TEST(ParallelExecution, FunctionalResultsMatchSerial) {
  const compiler::PccResult pcc = build();
  arch::Model serial_model, parallel_model;
  const RunReport serial = run_mode(pcc, false, &serial_model);
  const RunReport parallel = run_mode(pcc, true, &parallel_model);

  EXPECT_EQ(serial.fired_spikes, parallel.fired_spikes);
  EXPECT_EQ(serial.routed_spikes, parallel.routed_spikes);
  EXPECT_EQ(serial.local_spikes, parallel.local_spikes);
  EXPECT_EQ(serial.remote_spikes, parallel.remote_spikes);
  EXPECT_EQ(serial.synaptic_events, parallel.synaptic_events);
  EXPECT_EQ(serial.messages, parallel.messages);
  // The entire final machine state — membranes, delay buffers, PRNGs —
  // must be bit-identical.
  EXPECT_TRUE(serial_model == parallel_model);
}

TEST(ParallelExecution, HookForcesSerialAndStaysCorrect) {
  const compiler::PccResult pcc = build(80, 3);
  arch::Model model = pcc.model;
  comm::MpiTransport transport(3, comm::CommCostModel{});
  Config cfg;
  cfg.parallel_execution = true;  // hook below overrides this
  Compass sim(model, pcc.partition, transport, cfg);
  std::uint64_t hooked = 0;
  sim.set_spike_hook([&](arch::Tick, arch::CoreId, unsigned) { ++hooked; });
  const RunReport rep = sim.run(40);
  EXPECT_EQ(hooked, rep.fired_spikes);
}

TEST(ParallelExecution, CountersSurviveManySmallTicks) {
  const compiler::PccResult pcc = build(77, 2);
  arch::Model model = pcc.model;
  comm::MpiTransport transport(2, comm::CommCostModel{});
  Config cfg;
  cfg.parallel_execution = true;
  Compass sim(model, pcc.partition, transport, cfg);
  std::uint64_t stepped = 0;
  for (int i = 0; i < 50; ++i) stepped += sim.step();
  EXPECT_EQ(stepped, sim.report().fired_spikes);
  EXPECT_EQ(sim.report().routed_spikes,
            sim.report().local_spikes + sim.report().remote_spikes);
}

}  // namespace
}  // namespace compass::runtime
