// Unit tests for the CoreObject description format.
#include "compiler/coreobject.h"

#include <gtest/gtest.h>

namespace compass::compiler {
namespace {

const char* kSample = R"(# test network
network demo
seed 123
cores 64
region V1 class cortical volume 100.5 self 0.4 rate 8
region LGN class thalamic volume unknown self 0.2 rate 10
region CD class basal volume 12 self 0.2 rate 5
edge LGN V1 2.5
edge V1 CD
)";

TEST(CoreObject, ParsesSample) {
  const Spec spec = parse_coreobject_string(kSample);
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.seed, 123u);
  EXPECT_EQ(spec.total_cores, 64u);
  ASSERT_EQ(spec.regions.size(), 3u);
  EXPECT_EQ(spec.regions[0].name, "V1");
  EXPECT_EQ(spec.regions[0].cls, RegionClass::kCortical);
  ASSERT_TRUE(spec.regions[0].volume.has_value());
  EXPECT_DOUBLE_EQ(*spec.regions[0].volume, 100.5);
  EXPECT_DOUBLE_EQ(spec.regions[0].self_fraction, 0.4);
  EXPECT_DOUBLE_EQ(spec.regions[0].rate_hz, 8.0);
  EXPECT_FALSE(spec.regions[1].volume.has_value());  // "unknown"
  ASSERT_EQ(spec.edges.size(), 2u);
  EXPECT_EQ(spec.edges[0].src, "LGN");
  EXPECT_DOUBLE_EQ(spec.edges[0].weight, 2.5);
  EXPECT_DOUBLE_EQ(spec.edges[1].weight, 1.0);  // default weight
  EXPECT_EQ(spec.validate(), "");
}

TEST(CoreObject, RoundTripsThroughWriter) {
  const Spec a = parse_coreobject_string(kSample);
  const Spec b = parse_coreobject_string(to_coreobject_string(a));
  EXPECT_EQ(b.name, a.name);
  EXPECT_EQ(b.seed, a.seed);
  EXPECT_EQ(b.total_cores, a.total_cores);
  ASSERT_EQ(b.regions.size(), a.regions.size());
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(b.regions[i].name, a.regions[i].name);
    EXPECT_EQ(b.regions[i].cls, a.regions[i].cls);
    EXPECT_EQ(b.regions[i].volume.has_value(), a.regions[i].volume.has_value());
    EXPECT_DOUBLE_EQ(b.regions[i].self_fraction, a.regions[i].self_fraction);
  }
  ASSERT_EQ(b.edges.size(), a.edges.size());
  EXPECT_DOUBLE_EQ(b.edges[0].weight, a.edges[0].weight);
}

TEST(CoreObject, CommentsAndBlankLinesIgnored) {
  const Spec spec = parse_coreobject_string(
      "\n# full comment line\nnetwork x # trailing comment\n\nseed 1\ncores 1\n"
      "region A class generic volume 1 self 0.5 rate 1\n");
  EXPECT_EQ(spec.name, "x");
  EXPECT_EQ(spec.regions.size(), 1u);
}

TEST(CoreObject, UnknownKeywordFailsWithLineNumber) {
  try {
    parse_coreobject_string("network x\nbogus 1\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(CoreObject, BadClassFails) {
  EXPECT_THROW(
      parse_coreobject_string("region A class nonsense volume 1 self 0 rate 1\n"),
      std::runtime_error);
}

TEST(CoreObject, BadVolumeFails) {
  EXPECT_THROW(
      parse_coreobject_string("region A class generic volume abc self 0 rate 1\n"),
      std::runtime_error);
}

TEST(CoreObject, MissingEdgeEndpointFails) {
  EXPECT_THROW(parse_coreobject_string("edge A\n"), std::runtime_error);
}

TEST(CoreObjectValidate, EmptySpecRejected) {
  Spec spec;
  EXPECT_NE(Spec{spec}.validate(), "");
}

TEST(CoreObjectValidate, DuplicateRegionRejected) {
  Spec spec = parse_coreobject_string(kSample);
  spec.regions.push_back(spec.regions[0]);
  EXPECT_NE(spec.validate().find("duplicate"), std::string::npos);
}

TEST(CoreObjectValidate, EdgeToUnknownRegionRejected) {
  Spec spec = parse_coreobject_string(kSample);
  spec.edges.push_back({"V1", "Nowhere", 1.0});
  EXPECT_NE(spec.validate().find("unknown region"), std::string::npos);
}

TEST(CoreObjectValidate, SelfFractionOutOfRangeRejected) {
  Spec spec = parse_coreobject_string(kSample);
  spec.regions[0].self_fraction = 1.5;
  EXPECT_NE(spec.validate().find("self fraction"), std::string::npos);
}

TEST(CoreObjectValidate, TooFewCoresRejected) {
  Spec spec = parse_coreobject_string(kSample);
  spec.total_cores = 2;  // 3 regions
  EXPECT_NE(spec.validate().find("below region count"), std::string::npos);
}

TEST(CoreObjectValidate, NonPositiveEdgeWeightRejected) {
  Spec spec = parse_coreobject_string(kSample);
  spec.edges[0].weight = 0.0;
  EXPECT_NE(spec.validate().find("weight"), std::string::npos);
}

TEST(CoreObject, RegionIndexLookup) {
  const Spec spec = parse_coreobject_string(kSample);
  EXPECT_EQ(spec.region_index("V1"), 0);
  EXPECT_EQ(spec.region_index("CD"), 2);
  EXPECT_EQ(spec.region_index("nope"), -1);
}

TEST(CoreObject, ClassNamesRoundTrip) {
  for (RegionClass c : {RegionClass::kCortical, RegionClass::kThalamic,
                        RegionClass::kBasal, RegionClass::kGeneric}) {
    const auto parsed = region_class_from_string(to_string(c));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(region_class_from_string("junk").has_value());
}

TEST(CoreObject, LoadMissingFileThrows) {
  EXPECT_THROW(load_coreobject_file("/nonexistent/net.co"), std::runtime_error);
}

}  // namespace
}  // namespace compass::compiler
