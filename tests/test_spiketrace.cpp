// Causal spike-trace lockdown suite (`ctest -L obs`).
//
// The tentpole guarantees under test:
//   - the sampled span set is *bit-identical* across MPI and PGAS transports
//     and across OpenMP thread counts (1/2/8) — every span field, in the
//     same emission order;
//   - a checkpoint/restore resume re-samples and re-emits exactly the spans
//     the uninterrupted run emitted for ticks past the restore point;
//   - the span JSONL schema is frozen by a golden file
//     (tests/data/golden_spike_trace.jsonl; COMPASS_REGOLDEN=1 regenerates);
//   - writer record caps surface as {"type":"truncated"} markers that the
//     offline analyzers turn into WARNINGs instead of silently reporting a
//     prefix of the run;
//   - the sampled-path latency histogram reaches the Prometheus exposition
//     as compass_spike_path_latency_ticks;
//   - a kill-rank fault leaves a parseable flight-recorder JSONL dump and
//     the eaten spikes show up as lost chains.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#ifdef COMPASS_HAVE_OPENMP
#include <omp.h>
#endif

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "comm/pgas_transport.h"
#include "compiler/pcc.h"
#include "json_lite.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/spiketrace.h"
#include "obs/trace.h"
#include "resilience/checkpoint.h"
#include "resilience/fault.h"
#include "runtime/compass.h"

#ifndef COMPASS_TEST_DATA_DIR
#error "COMPASS_TEST_DATA_DIR must be defined by the build"
#endif

namespace compass {
namespace {

compiler::PccResult build(std::uint64_t cores = 77, int ranks = 3,
                          int threads = 2) {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = cores;
  mopt.seed = 2012;
  compiler::PccOptions popt;
  popt.ranks = ranks;
  popt.threads_per_rank = threads;
  return compiler::compile(cocomac::build_macaque_spec(mopt), popt);
}

struct SpanRunOptions {
  bool pgas = false;
  bool parallel = false;
  std::uint64_t sample_every = 4;
  arch::Tick ticks = 16;
};

std::vector<obs::SpikeSpan> run_spans(const compiler::PccResult& pcc,
                                      const SpanRunOptions& opt) {
  arch::Model model = pcc.model;
  std::unique_ptr<comm::Transport> transport;
  if (opt.pgas) {
    transport = std::make_unique<comm::PgasTransport>(pcc.partition.ranks(),
                                                      comm::CommCostModel{});
  } else {
    transport = std::make_unique<comm::MpiTransport>(pcc.partition.ranks(),
                                                     comm::CommCostModel{});
  }
  runtime::Config cfg;
  cfg.measure = false;
  cfg.parallel_execution = opt.parallel;
  runtime::Compass sim(model, pcc.partition, *transport, cfg);

  obs::SpikeTracer tracer(pcc.partition.ranks(),
                          obs::SpikeTraceOptions{.sample_every =
                                                     opt.sample_every});
  obs::SpikeSpanBuffer buffer;
  tracer.add_sink(&buffer);
  sim.set_spike_tracer(&tracer);
  sim.run(opt.ticks);
  return buffer.spans();
}

TEST(SpikeTrace, TraceIdIsPureAndSamplingFollowsIt) {
  const std::uint64_t id = obs::SpikeTracer::trace_id(0x5A1DE5, 7, 19, 130);
  EXPECT_EQ(id, obs::SpikeTracer::trace_id(0x5A1DE5, 7, 19, 130));
  EXPECT_NE(id, obs::SpikeTracer::trace_id(0x5A1DE5, 8, 19, 130));
  EXPECT_NE(id, obs::SpikeTracer::trace_id(0x5A1DE5, 7, 20, 130));
  EXPECT_NE(id, obs::SpikeTracer::trace_id(0x5A1DE6, 7, 19, 130));

  obs::SpikeTracer every(2, obs::SpikeTraceOptions{.sample_every = 1});
  EXPECT_TRUE(every.sampled(7, 19, 130));
  obs::SpikeTracer some(2, obs::SpikeTraceOptions{.sample_every = 5});
  EXPECT_EQ(some.sampled(7, 19, 130), id % 5 == 0);
}

TEST(SpikeTrace, RankMismatchThrows) {
  const compiler::PccResult pcc = build();
  arch::Model model = pcc.model;
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Compass sim(model, pcc.partition, transport, {});
  obs::SpikeTracer wrong(4);
  EXPECT_THROW(sim.set_spike_tracer(&wrong), std::invalid_argument);
}

TEST(SpikeTrace, SampledSpansBitIdenticalAcrossTransports) {
  const compiler::PccResult pcc = build();
  const std::vector<obs::SpikeSpan> mpi =
      run_spans(pcc, {.pgas = false});
  const std::vector<obs::SpikeSpan> pgas =
      run_spans(pcc, {.pgas = true});
  ASSERT_FALSE(mpi.empty());
  EXPECT_EQ(mpi, pgas);
}

TEST(SpikeTrace, SampledSpansBitIdenticalAcrossThreadCounts) {
  const compiler::PccResult pcc = build();
  const std::vector<obs::SpikeSpan> serial =
      run_spans(pcc, {.parallel = false});
  ASSERT_FALSE(serial.empty());
#ifdef COMPASS_HAVE_OPENMP
  for (int threads : {1, 2, 8}) {
    omp_set_num_threads(threads);
    EXPECT_EQ(serial, run_spans(pcc, {.parallel = true}))
        << "span set diverged at " << threads << " OpenMP thread(s)";
  }
  omp_set_num_threads(omp_get_num_procs());
#else
  EXPECT_EQ(serial, run_spans(pcc, {.parallel = true}));
#endif
}

TEST(SpikeTrace, RestoredRunReemitsTheFullRunsTailSpans) {
  const compiler::PccResult pcc = build();
  constexpr arch::Tick kHalf = 12, kFull = 24;
  const std::vector<obs::SpikeSpan> full =
      run_spans(pcc, {.sample_every = 4, .ticks = kFull});

  // First half (untraced), snapshot, restore into a fresh model + simulator,
  // then trace the second half.
  arch::Model model1 = pcc.model;
  comm::MpiTransport t1(3, comm::CommCostModel{});
  runtime::Config cfg;
  cfg.measure = false;
  runtime::Compass sim1(model1, pcc.partition, t1, cfg);
  sim1.run(kHalf);
  const resilience::Checkpoint cp = resilience::capture(sim1, model1);

  arch::Model model2 = pcc.model;
  comm::MpiTransport t2(3, comm::CommCostModel{});
  runtime::Compass sim2(model2, pcc.partition, t2, cfg);
  resilience::restore(cp, sim2, model2);
  obs::SpikeTracer tracer(3, obs::SpikeTraceOptions{.sample_every = 4});
  obs::SpikeSpanBuffer buffer;
  tracer.add_sink(&buffer);
  sim2.set_spike_tracer(&tracer);
  sim2.run(kFull - kHalf);

  // Chains that fired before the restore live in the restored axon rings —
  // the resumed tracer never saw them fire, so compare only the full run's
  // spans anchored at ticks past the checkpoint.
  std::vector<obs::SpikeSpan> tail;
  for (const obs::SpikeSpan& s : full) {
    if (s.fire_tick >= kHalf) tail.push_back(s);
  }
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(tail, buffer.spans());
}

TEST(SpikeTrace, GoldenSpanFileMatches) {
  const compiler::PccResult pcc = build();
  std::ostringstream os;
  {
    arch::Model model = pcc.model;
    comm::MpiTransport transport(3, comm::CommCostModel{});
    runtime::Config cfg;
    cfg.measure = false;
    runtime::Compass sim(model, pcc.partition, transport, cfg);
    obs::SpikeTracer tracer(3, obs::SpikeTraceOptions{.sample_every = 4});
    obs::JsonlSpikeSpanWriter writer(os);
    tracer.add_sink(&writer);
    sim.set_spike_tracer(&tracer);
    sim.run(12);
    writer.finish();
  }
  const std::string actual = os.str();
  const std::string path =
      std::string(COMPASS_TEST_DATA_DIR) + "/golden_spike_trace.jsonl";

  if (std::getenv("COMPASS_REGOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing " << path << " (run once with COMPASS_REGOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "span schema or sampling drifted; if intentional, regenerate with "
         "COMPASS_REGOLDEN=1 and commit the new golden file";
}

TEST(SpikeTrace, AnalyzerRoundTripsWriterOutput) {
  const compiler::PccResult pcc = build();
  arch::Model model = pcc.model;
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Config cfg;
  cfg.measure = false;
  runtime::Compass sim(model, pcc.partition, transport, cfg);
  obs::SpikeTracer tracer(3, obs::SpikeTraceOptions{.sample_every = 4});
  std::ostringstream os;
  obs::JsonlSpikeSpanWriter writer(os);
  tracer.add_sink(&writer);
  sim.set_spike_tracer(&tracer);
  sim.run(16);
  writer.finish();

  std::istringstream is(os.str());
  const obs::SpikeTraceAnalysis analysis = obs::analyze_spike_trace(is);
  EXPECT_EQ(analysis.spans, tracer.spans_emitted());
  EXPECT_EQ(analysis.chains.size(), tracer.sampled_spikes());
  EXPECT_EQ(analysis.dropped, 0u);
  std::uint64_t integrated = 0, lost = 0;
  for (const obs::SpikeChain& c : analysis.chains) {
    integrated += c.integrated ? 1 : 0;
    lost += c.lost ? 1 : 0;
    if (c.integrated) {
      EXPECT_EQ(c.latency_ticks(), c.delay);
      EXPECT_GE(c.integrate_tick, c.fire_tick);
    }
  }
  EXPECT_EQ(integrated, tracer.completed_spikes());
  EXPECT_EQ(lost, tracer.lost_spikes());

  std::ostringstream report;
  obs::write_span_report(report, analysis);
  EXPECT_NE(report.str().find("spike span chains"), std::string::npos);
  EXPECT_EQ(report.str().find("WARNING"), std::string::npos);

  std::ostringstream json;
  obs::write_span_report_json(json, analysis);
  EXPECT_TRUE(testing::json_valid(json.str())) << json.str();

  std::ostringstream flow;
  const std::uint64_t clipped = obs::write_span_flow_trace(flow, analysis);
  EXPECT_EQ(clipped, 0u);
  EXPECT_TRUE(testing::json_valid(flow.str()));
  EXPECT_NE(flow.str().find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(flow.str().find("\"ph\":\"f\""), std::string::npos);
}

TEST(SpikeTrace, WriterCapSurfacesAsTruncationMarkerAndWarning) {
  const compiler::PccResult pcc = build();
  arch::Model model = pcc.model;
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Config cfg;
  cfg.measure = false;
  runtime::Compass sim(model, pcc.partition, transport, cfg);
  obs::SpikeTracer tracer(3, obs::SpikeTraceOptions{.sample_every = 4});
  std::ostringstream os;
  obs::JsonlSpikeSpanWriter writer(os,
                                   obs::SpikeJsonlOptions{.max_records = 5});
  tracer.add_sink(&writer);
  sim.set_spike_tracer(&tracer);
  sim.run(16);
  writer.finish();
  ASSERT_GT(writer.dropped(), 0u);
  EXPECT_NE(os.str().find("\"type\":\"truncated\""), std::string::npos);

  std::istringstream is(os.str());
  const obs::SpikeTraceAnalysis analysis = obs::analyze_spike_trace(is);
  EXPECT_EQ(analysis.dropped, writer.dropped());
  std::ostringstream report;
  obs::write_span_report(report, analysis);
  EXPECT_NE(report.str().find("WARNING"), std::string::npos);
}

// Satellite lockdown: the per-tick trace writer's cap surfaces in
// compass_prof's human report the same way.
TEST(SpikeTrace, TickTraceCapSurfacesInProfileReport) {
  const compiler::PccResult pcc = build();
  arch::Model model = pcc.model;
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Config cfg;
  cfg.measure = false;
  runtime::Compass sim(model, pcc.partition, transport, cfg);
  std::ostringstream os;
  obs::JsonlTraceWriter writer(
      os, obs::JsonlOptions{.include_measured = false, .max_records = 7});
  sim.add_trace_sink(&writer);
  sim.run(12);
  writer.finish();
  ASSERT_GT(writer.dropped(), 0u);
  EXPECT_NE(os.str().find("\"type\":\"truncated\""), std::string::npos);

  std::istringstream is(os.str());
  const obs::TraceProfile profile = obs::analyze_trace(is);
  EXPECT_EQ(profile.dropped, writer.dropped());
  std::ostringstream report;
  obs::write_trace_report(report, profile);
  EXPECT_NE(report.str().find("WARNING"), std::string::npos);
  std::ostringstream json;
  obs::write_trace_report_json(json, profile);
  EXPECT_NE(json.str().find("\"dropped\":"), std::string::npos);
  EXPECT_TRUE(testing::json_valid(json.str()));
}

TEST(SpikeTrace, LatencyHistogramReachesPrometheusExposition) {
  const compiler::PccResult pcc = build();
  arch::Model model = pcc.model;
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Config cfg;
  cfg.measure = false;
  runtime::Compass sim(model, pcc.partition, transport, cfg);
  obs::MetricsRegistry registry;
  obs::SpikeTracer tracer(3, obs::SpikeTraceOptions{.sample_every = 4});
  tracer.set_metrics(&registry);
  sim.set_spike_tracer(&tracer);
  sim.run(16);
  ASSERT_GT(tracer.completed_spikes(), 0u);

  std::ostringstream prom;
  obs::write_snapshot_prometheus(prom, registry.snapshot());
  const std::string text = prom.str();
  EXPECT_NE(text.find("compass_spike_path_latency_ticks_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("compass_spike_path_latency_ticks_count"),
            std::string::npos);
  EXPECT_NE(text.find("compass_spiketrace_sampled"), std::string::npos);
}

TEST(SpikeTrace, KillRankLeavesParseableFlightDumpAndLostChains) {
  const compiler::PccResult pcc = build();
  arch::Model model = pcc.model;
  comm::MpiTransport inner(3, comm::CommCostModel{});
  resilience::FaultPlan plan;
  plan.kill_rank = 1;
  plan.kill_tick = 4;
  plan.policy = resilience::FaultPolicy::kWarnAndCount;
  resilience::FaultInjectingTransport transport(inner, plan);

  const std::string dump_path =
      (std::filesystem::temp_directory_path() /
       "compass_flight_dump_test.jsonl")
          .string();
  std::filesystem::remove(dump_path);
  obs::FlightRecorder flight(3);
  flight.set_dump_path(dump_path);

  runtime::Config cfg;
  cfg.measure = false;
  runtime::Compass sim(model, pcc.partition, transport, cfg);
  sim.set_flight_recorder(&flight);
  obs::SpikeTracer tracer(3, obs::SpikeTraceOptions{.sample_every = 2});
  obs::SpikeSpanBuffer buffer;
  tracer.add_sink(&buffer);
  sim.set_spike_tracer(&tracer);
  sim.run(16);

  // The first kill triggered a post-mortem dump; every line is valid JSON
  // and the header names the reason.
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "no flight dump at " << dump_path;
  std::string line;
  std::size_t lines = 0;
  bool saw_fault = false;
  while (std::getline(in, line)) {
    EXPECT_TRUE(testing::json_valid(line)) << "line " << lines << ": " << line;
    if (lines == 0) {
      EXPECT_NE(line.find("\"type\":\"flight_dump\""), std::string::npos);
      EXPECT_NE(line.find("fault-kill-rank"), std::string::npos);
    }
    if (line.find("\"kind\":\"fault\"") != std::string::npos) saw_fault = true;
    ++lines;
  }
  EXPECT_GT(lines, 1u);
  EXPECT_TRUE(saw_fault);
  std::filesystem::remove(dump_path);

  // Spikes the dead rank ate surface as lost chains, not silent holes.
  EXPECT_GT(tracer.lost_spikes(), 0u);
  bool saw_lost_span = false;
  for (const obs::SpikeSpan& s : buffer.spans()) {
    if (s.stage == obs::SpikeStage::kLost) saw_lost_span = true;
  }
  EXPECT_TRUE(saw_lost_span);
}

TEST(SpikeTrace, FlightRecorderRingKeepsOnlyNewestEvents) {
  obs::FlightRecorder flight(1, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    flight.record(0, obs::FlightEventKind::kNote, "e", -1,
                  static_cast<std::uint64_t>(i));
  }
  std::ostringstream os;
  flight.dump(os, "test");
  const std::string text = os.str();
  // Events 0..5 were overwritten; 6..9 survive.
  EXPECT_EQ(text.find("\"a\":5,"), std::string::npos);
  EXPECT_NE(text.find("\"a\":6"), std::string::npos);
  EXPECT_NE(text.find("\"a\":9"), std::string::npos);
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    EXPECT_TRUE(testing::json_valid(line)) << line;
  }
}

}  // namespace
}  // namespace compass
