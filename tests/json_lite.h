// Minimal recursive-descent JSON syntax checker for the observability tests.
// Validates structure only (objects, arrays, strings with escapes, numbers,
// literals); it does not build a DOM. Strict enough to catch the failure
// modes a hand-rolled writer can produce: trailing commas, unquoted keys,
// unescaped control characters, truncated documents.
#pragma once

#include <cctype>
#include <string_view>

namespace compass::testing {

namespace json_detail {

inline void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
}

inline bool parse_value(std::string_view s, std::size_t& i);

inline bool parse_string(std::string_view s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  while (i < s.size()) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '"') {
      ++i;
      return true;
    }
    if (c < 0x20) return false;  // unescaped control character
    if (c == '\\') {
      ++i;
      if (i >= s.size()) return false;
      const char e = s[i];
      if (e == 'u') {
        for (int k = 0; k < 4; ++k) {
          ++i;
          if (i >= s.size() || !std::isxdigit(static_cast<unsigned char>(s[i])))
            return false;
        }
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                 e != 'n' && e != 'r' && e != 't') {
        return false;
      }
    }
    ++i;
  }
  return false;  // unterminated
}

inline bool parse_number(std::string_view s, std::size_t& i) {
  const std::size_t start = i;
  if (i < s.size() && s[i] == '-') ++i;
  if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
    return false;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
      return false;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
      return false;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  return i > start;
}

inline bool parse_object(std::string_view s, std::size_t& i) {
  ++i;  // past '{'
  skip_ws(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    return true;
  }
  while (true) {
    skip_ws(s, i);
    if (!parse_string(s, i)) return false;
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    if (!parse_value(s, i)) return false;
    skip_ws(s, i);
    if (i >= s.size()) return false;
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] == '}') {
      ++i;
      return true;
    }
    return false;
  }
}

inline bool parse_array(std::string_view s, std::size_t& i) {
  ++i;  // past '['
  skip_ws(s, i);
  if (i < s.size() && s[i] == ']') {
    ++i;
    return true;
  }
  while (true) {
    if (!parse_value(s, i)) return false;
    skip_ws(s, i);
    if (i >= s.size()) return false;
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] == ']') {
      ++i;
      return true;
    }
    return false;
  }
}

inline bool parse_value(std::string_view s, std::size_t& i) {
  skip_ws(s, i);
  if (i >= s.size()) return false;
  switch (s[i]) {
    case '{': return parse_object(s, i);
    case '[': return parse_array(s, i);
    case '"': return parse_string(s, i);
    case 't':
      if (s.substr(i, 4) != "true") return false;
      i += 4;
      return true;
    case 'f':
      if (s.substr(i, 5) != "false") return false;
      i += 5;
      return true;
    case 'n':
      if (s.substr(i, 4) != "null") return false;
      i += 4;
      return true;
    default: return parse_number(s, i);
  }
}

}  // namespace json_detail

/// True iff `s` is exactly one syntactically valid JSON document.
inline bool json_valid(std::string_view s) {
  std::size_t i = 0;
  if (!json_detail::parse_value(s, i)) return false;
  json_detail::skip_ws(s, i);
  return i == s.size();
}

}  // namespace compass::testing
