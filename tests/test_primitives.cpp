// Behavioural tests for the functional-primitive library: these circuits
// have provable timing/selection properties, making them exact fixtures.
#include "primitives/primitives.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "comm/mpi_transport.h"
#include "runtime/compass.h"

namespace compass::primitives {
namespace {

using arch::CoreId;
using arch::Model;
using arch::Tick;

struct Harness {
  Model model;
  runtime::Partition partition;
  std::unique_ptr<comm::MpiTransport> transport;
  std::unique_ptr<runtime::Compass> sim;
  std::vector<std::tuple<Tick, CoreId, unsigned>> trace;

  explicit Harness(Model m, int ranks = 1)
      : model(std::move(m)),
        partition(runtime::Partition::uniform(model.num_cores(), ranks, 1)),
        transport(std::make_unique<comm::MpiTransport>(ranks,
                                                       comm::CommCostModel{})) {
    sim = std::make_unique<runtime::Compass>(model, partition, *transport);
    sim->set_spike_hook([this](Tick t, CoreId c, unsigned j) {
      trace.emplace_back(t, c, j);
    });
  }
};

TEST(PoissonSource, RateMatchesTarget) {
  Model m(1, 3);
  configure_poisson_source(m.core(0), /*rate_hz=*/20.0);
  m.reseed_cores();
  Harness h(std::move(m));
  const runtime::RunReport r = h.sim->run(2000);  // 2 simulated seconds
  EXPECT_NEAR(r.mean_rate_hz(256), 20.0, 2.0);
}

TEST(PoissonSource, ZeroRateIsSilent) {
  Model m(1, 3);
  configure_poisson_source(m.core(0), 0.0);
  Harness h(std::move(m));
  EXPECT_EQ(h.sim->run(500).fired_spikes, 0u);
}

TEST(PoissonSource, RejectsAbsurdRate) {
  Model m(1, 0);
  EXPECT_THROW(configure_poisson_source(m.core(0), -1.0), std::invalid_argument);
  EXPECT_THROW(configure_poisson_source(m.core(0), 2000.0), std::invalid_argument);
}

TEST(PoissonSource, NeuronsAreIndependent) {
  Model m(1, 5);
  configure_poisson_source(m.core(0), 100.0);
  m.reseed_cores();
  Harness h(std::move(m));
  h.sim->run(100);
  // With independent stochastic drive, firing is not synchronised: ticks
  // where *all* 256 neurons fire together should not exist.
  std::vector<int> per_tick(100, 0);
  for (const auto& [t, c, j] : h.trace) ++per_tick[t];
  for (int n : per_tick) EXPECT_LT(n, 256);
}

TEST(Oscillator, ExactPeriod) {
  for (std::uint8_t period : {1, 3, 7, 15}) {
    Model m(1, 0);
    configure_oscillator(m.core(0), 0, period, /*lanes=*/1);
    Harness h(std::move(m));
    h.sim->run(60);
    ASSERT_FALSE(h.trace.empty());
    for (std::size_t i = 0; i < h.trace.size(); ++i) {
      EXPECT_EQ(std::get<0>(h.trace[i]), static_cast<Tick>(i) * period)
          << "period " << int(period);
    }
  }
}

TEST(Oscillator, MultipleLanes) {
  Model m(1, 0);
  configure_oscillator(m.core(0), 0, /*period=*/4, /*lanes=*/8);
  Harness h(std::move(m));
  h.sim->run(17);
  // Ticks 0,4,8,12,16 x 8 lanes = 40 spikes.
  EXPECT_EQ(h.trace.size(), 40u);
}

TEST(Oscillator, RejectsBadPeriodAndLanes) {
  Model m(1, 0);
  EXPECT_THROW(configure_oscillator(m.core(0), 0, 0), std::invalid_argument);
  EXPECT_THROW(configure_oscillator(m.core(0), 0, 16), std::invalid_argument);
  EXPECT_THROW(configure_oscillator(m.core(0), 0, 4, 0), std::invalid_argument);
  EXPECT_THROW(configure_oscillator(m.core(0), 0, 4, 257), std::invalid_argument);
}

TEST(Relay, LatencyIsExactlyDelay) {
  // Two cores: relay 0 -> relay 1 with delay 5. Inject into core 0 at tick
  // 1: core 0 fires at tick 1, core 1 fires at tick 6.
  Model m(2, 0);
  configure_relay(m.core(0), 1, /*delay=*/5);
  configure_relay(m.core(1), arch::kInvalidCore);
  inject_packet(m.core(0), 0, 1, /*width=*/3);
  Harness h(std::move(m));
  h.sim->run(10);
  ASSERT_EQ(h.trace.size(), 6u);  // 3 spikes at core 0, 3 at core 1
  for (const auto& [t, c, j] : h.trace) {
    if (c == 0) {
      EXPECT_EQ(t, 1u);
    } else {
      EXPECT_EQ(t, 6u);
    }
    EXPECT_LT(j, 3u);
  }
}

TEST(Relay, PreservesLaneIdentity) {
  Model m(2, 0);
  configure_relay(m.core(0), 1, 2);
  configure_relay(m.core(1), arch::kInvalidCore);
  m.core(0).deliver(17, 1);  // only axon 17, visible at tick 1
  Harness h(std::move(m));
  h.sim->run(5);
  ASSERT_EQ(h.trace.size(), 2u);
  EXPECT_EQ(std::get<2>(h.trace[0]), 17u);
  EXPECT_EQ(std::get<2>(h.trace[1]), 17u);
  EXPECT_EQ(std::get<1>(h.trace[1]), 1u);
}

TEST(SynfireChain, PacketAdvancesOneHopPerDelay) {
  Model m(5, 0);
  const std::vector<CoreId> ids = {0, 1, 2, 3, 4};
  build_synfire_chain(m, ids, /*delay=*/2, /*ring=*/false);
  inject_packet(m.core(0), 0, 1, /*width=*/10);
  Harness h(std::move(m));
  h.sim->run(12);
  // Core k fires at tick 1 + 2k, 10 spikes each, chain ends at core 4.
  EXPECT_EQ(h.trace.size(), 50u);
  for (const auto& [t, c, j] : h.trace) {
    EXPECT_EQ(t, 1u + 2u * c);
  }
}

TEST(SynfireChain, RingWrapsAround) {
  Model m(3, 0);
  const std::vector<CoreId> ids = {0, 1, 2};
  build_synfire_chain(m, ids, 1, /*ring=*/true);
  inject_packet(m.core(0), 0, 1, 4);
  Harness h(std::move(m), /*ranks=*/3);  // exercise remote hops too
  h.sim->run(10);
  // Tick t fires core (t-1) mod 3 for t >= 1.
  for (const auto& [t, c, j] : h.trace) {
    EXPECT_EQ(c, (t - 1) % 3);
  }
  EXPECT_EQ(h.trace.size(), 9u * 4u);
}

TEST(SynfireChain, RejectsTooFewCores) {
  Model m(1, 0);
  const std::vector<CoreId> ids = {0};
  EXPECT_THROW(build_synfire_chain(m, ids, 1), std::invalid_argument);
}

TEST(WinnerTakeAll, StrongerGroupSuppressesWeaker) {
  Model m(1, 0);
  WtaOptions opt;
  opt.groups = 2;
  opt.group_size = 8;
  configure_winner_take_all(m.core(0), 0, opt);
  Harness h(std::move(m));
  // Drive group 0 every tick, group 1 every third tick, via direct axon
  // injection before each step.
  std::uint64_t g0 = 0, g1 = 0;
  for (Tick t = 0; t < 60; ++t) {
    h.model.core(0).deliver(0, static_cast<unsigned>((t + 1) & 15));
    if (t % 3 == 0) {
      h.model.core(0).deliver(1, static_cast<unsigned>((t + 1) & 15));
    }
    h.sim->step();
  }
  for (const auto& [t, c, j] : h.trace) {
    (j < 8 ? g0 : g1) += 1;
  }
  EXPECT_GT(g0, 0u);
  EXPECT_GT(g0, 5 * std::max<std::uint64_t>(g1, 1));
}

TEST(WinnerTakeAll, RejectsOversizedConfiguration) {
  Model m(1, 0);
  WtaOptions opt;
  opt.groups = 64;
  opt.group_size = 8;  // 512 > 256 neurons
  EXPECT_THROW(configure_winner_take_all(m.core(0), 0, opt),
               std::invalid_argument);
  opt.groups = 200;  // 400 axons needed
  opt.group_size = 1;
  EXPECT_THROW(configure_winner_take_all(m.core(0), 0, opt),
               std::invalid_argument);
}

TEST(InjectPacket, SchedulesOnRequestedTick) {
  Model m(1, 0);
  configure_relay(m.core(0), arch::kInvalidCore);
  inject_packet(m.core(0), 2, 7, 5);
  Harness h(std::move(m));
  h.sim->run(10);
  EXPECT_EQ(h.trace.size(), 5u);
  for (const auto& [t, c, j] : h.trace) EXPECT_EQ(t, 7u);
}

}  // namespace
}  // namespace compass::primitives
