// Tests for the C2-style baseline: Izhikevich dynamics, the explicit
// synapse network, the Compass-model converter, and the flat-MPI simulator.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "c2/izhikevich.h"
#include "c2/network.h"
#include "c2/simulator.h"
#include "comm/mpi_transport.h"
#include "primitives/primitives.h"

namespace compass::c2 {
namespace {

TEST(Izhikevich, RestingStateIsStable) {
  IzhikevichState s;
  const IzhikevichParams p = IzhikevichParams::regular_spiking();
  for (int t = 0; t < 1000; ++t) {
    EXPECT_FALSE(izhikevich_step(p, s, 0.0f));
  }
  // The RS fixed point solves 0.04v^2 + 4.8v + 140 = 0 -> v = -70 mV.
  EXPECT_NEAR(s.v, -70.0f, 2.0f);
}

TEST(Izhikevich, DcCurrentCausesTonicSpiking) {
  IzhikevichState s;
  const IzhikevichParams p = IzhikevichParams::regular_spiking();
  int fires = 0;
  for (int t = 0; t < 1000; ++t) {
    if (izhikevich_step(p, s, 10.0f)) ++fires;
  }
  // RS cell under I=10: regular tonic spiking in the tens of Hz.
  EXPECT_GT(fires, 10);
  EXPECT_LT(fires, 200);
}

TEST(Izhikevich, FastSpikingFiresFasterThanRegular) {
  IzhikevichState rs_state, fs_state;
  int rs = 0, fs = 0;
  for (int t = 0; t < 1000; ++t) {
    if (izhikevich_step(IzhikevichParams::regular_spiking(), rs_state, 10.0f)) ++rs;
    if (izhikevich_step(IzhikevichParams::fast_spiking(), fs_state, 10.0f)) ++fs;
  }
  EXPECT_GT(fs, rs);  // FS cells lack the strong spike-frequency adaptation
}

TEST(Izhikevich, ResetAfterSpike) {
  IzhikevichState s;
  const IzhikevichParams p = IzhikevichParams::regular_spiking();
  s.v = 31.0f;  // above threshold
  const float u_before = s.u;
  izhikevich_step(p, s, 0.0f);
  EXPECT_LT(s.v, 0.0f);              // reset toward c
  EXPECT_GT(s.u, u_before);          // u += d
}

TEST(Network, CsrConstruction) {
  Network net;
  const NeuronId a = net.add_neuron(IzhikevichParams::regular_spiking());
  const NeuronId b = net.add_neuron(IzhikevichParams::fast_spiking());
  const NeuronId c = net.add_neuron(IzhikevichParams::regular_spiking());
  net.add_synapse(a, {b, 10, 1, 0});
  net.add_synapse(a, {c, -5, 3, 0});
  net.add_synapse(c, {a, 7, 2, 0});
  net.finalize();

  EXPECT_EQ(net.num_neurons(), 3u);
  EXPECT_EQ(net.num_synapses(), 3u);
  EXPECT_EQ(net.outgoing(a).size(), 2u);
  EXPECT_EQ(net.outgoing(b).size(), 0u);
  EXPECT_EQ(net.outgoing(c).size(), 1u);
  EXPECT_EQ(net.outgoing(a)[1].weight, -5);
}

TEST(Network, RejectsDescendingSources) {
  Network net;
  net.add_neuron(IzhikevichParams::regular_spiking());
  net.add_neuron(IzhikevichParams::regular_spiking());
  net.add_synapse(1, {0, 1, 1, 0});
  EXPECT_THROW(net.add_synapse(0, {1, 1, 1, 0}), std::logic_error);
}

TEST(Network, RejectsBadTarget) {
  Network net;
  net.add_neuron(IzhikevichParams::regular_spiking());
  EXPECT_THROW(net.add_synapse(0, {99, 1, 1, 0}), std::out_of_range);
}

TEST(Network, DepositDrainRing) {
  Network net;
  const NeuronId n = net.add_neuron(IzhikevichParams::regular_spiking());
  net.finalize();
  net.deposit(n, 3, 10);
  net.deposit(n, 3, 5);
  net.deposit(n, 4, 1);
  EXPECT_EQ(net.drain(n, 3), 15);  // accumulates
  EXPECT_EQ(net.drain(n, 3), 0);   // drained
  EXPECT_EQ(net.drain(n, 20), 1);  // slot 20 mod 16 == 4
}

TEST(Network, SynapseBytesAre64xTheBitCrossbar) {
  // One Compass synapse: 1 bit. One C2 synapse record: 8 bytes.
  EXPECT_EQ(sizeof(Synapse) * 8, 64u);
}

TEST(FromCompass, UnrollsCrossbarExactly) {
  // Relay core 0 -> core 1: neuron (0,j) targets (1, axon j); core 1's
  // identity crossbar gives exactly one synapse per source neuron.
  arch::Model model(2, 1);
  primitives::configure_relay(model.core(0), 1, 2);
  primitives::configure_relay(model.core(1), arch::kInvalidCore);
  const Network net = from_compass(model);

  EXPECT_EQ(net.num_neurons(), 2u * 256u);
  // Core 0 neurons each project through core 1's identity crossbar row;
  // core 1 neurons are unconnected (no target). Core 0's own crossbar is
  // also identity but nobody targets core 0.
  EXPECT_EQ(net.num_synapses(), 256u);
  for (unsigned j = 0; j < 256; ++j) {
    const auto out = net.outgoing(j);
    ASSERT_EQ(out.size(), 1u) << j;
    EXPECT_EQ(out[0].target, 256u + j);
    EXPECT_EQ(out[0].delay, 2);
    EXPECT_EQ(out[0].weight, 64);  // relay weight == threshold
  }
}

TEST(FromCompass, SynapseCountMatchesReachableCrossbarBits) {
  arch::Model model(2, 3);
  // Neuron (0,0) -> (1, axon 5); row 5 of core 1 has 3 bits set.
  model.core(0).configure_neuron(0, model.core(0).params_of(0),
                                 arch::AxonTarget{1, 5, 1});
  model.core(1).set_synapse(5, 10);
  model.core(1).set_synapse(5, 20);
  model.core(1).set_synapse(5, 30);
  model.core(1).set_axon_type(5, 1);
  arch::NeuronParams p;
  p.weights = {1, -7, 3, 4};
  p.threshold = 10;
  for (unsigned k : {10u, 20u, 30u}) model.core(1).configure_neuron(k, p, {});
  const Network net = from_compass(model);
  EXPECT_EQ(net.num_synapses(), 3u);
  EXPECT_EQ(net.outgoing(0)[0].weight, -7);  // axon type 1 weight
}

struct C2Harness {
  Network net;
  runtime::Partition part;
  std::unique_ptr<comm::MpiTransport> transport;
  std::unique_ptr<Simulator> sim;

  C2Harness(Network n, int ranks, SimulatorConfig cfg = {})
      : net(std::move(n)),
        part(runtime::Partition::uniform(net.num_neurons(), ranks, 1)),
        transport(std::make_unique<comm::MpiTransport>(ranks,
                                                       comm::CommCostModel{})) {
    sim = std::make_unique<Simulator>(net, part, *transport, cfg);
  }
};

Network small_net(std::size_t neurons = 512) {
  Network net;
  for (std::size_t i = 0; i < neurons; ++i) {
    net.add_neuron(i % 5 == 4 ? IzhikevichParams::fast_spiking()
                              : IzhikevichParams::regular_spiking());
  }
  for (std::size_t i = 0; i < neurons; ++i) {
    // Ring coupling with mixed sign.
    const auto target = static_cast<NeuronId>((i + 1) % neurons);
    net.add_synapse(static_cast<NeuronId>(i),
                    {target, static_cast<std::int16_t>(i % 5 == 4 ? -4 : 2),
                     static_cast<std::uint8_t>(1 + i % 15), 0});
  }
  net.finalize();
  return net;
}

TEST(C2Simulator, NoiseDrivesActivity) {
  C2Harness h(small_net(), 2);
  const SimulatorReport rep = h.sim->run(500);
  EXPECT_GT(rep.fired_spikes, 0u);
  const double rate = rep.mean_rate_hz(512);
  EXPECT_GT(rate, 1.0);
  EXPECT_LT(rate, 300.0);
}

TEST(C2Simulator, RequiresFlatMpi) {
  Network net = small_net(64);
  const runtime::Partition part = runtime::Partition::uniform(64, 2, 4);
  comm::MpiTransport transport(2, comm::CommCostModel{});
  EXPECT_THROW(Simulator(net, part, transport), std::invalid_argument);
}

TEST(C2Simulator, RequiresFinalizedNetwork) {
  Network net;
  net.add_neuron(IzhikevichParams::regular_spiking());
  const runtime::Partition part = runtime::Partition::uniform(1, 1, 1);
  comm::MpiTransport transport(1, comm::CommCostModel{});
  EXPECT_THROW(Simulator(net, part, transport), std::invalid_argument);
}

TEST(C2Simulator, DeterministicAcrossRankCounts) {
  auto run_ranks = [](int ranks) {
    C2Harness h(small_net(256), ranks);
    std::vector<std::pair<std::uint64_t, NeuronId>> trace;
    h.sim->set_spike_hook([&](std::uint64_t t, NeuronId n) {
      trace.emplace_back(t, n);
    });
    h.sim->run(200);
    return trace;
  };
  const auto one = run_ranks(1);
  const auto four = run_ranks(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
}

TEST(C2Simulator, RemoteSpikesCarryWeights) {
  // Two neurons on two ranks; neuron 0 excites neuron 1 strongly. Silence
  // the noise so any neuron-1 spike must come from the delivered weight.
  Network net;
  net.add_neuron(IzhikevichParams::regular_spiking());
  net.add_neuron(IzhikevichParams::regular_spiking());
  net.add_synapse(0, {1, 30, 1, 0});
  net.finalize();
  net.state(0).v = 31.0f;  // neuron 0 fires on the first tick

  SimulatorConfig cfg;
  cfg.noise_p8 = 0;
  cfg.current_per_weight = 1.0f;
  C2Harness h(std::move(net), 2, cfg);
  std::vector<NeuronId> fired;
  h.sim->set_spike_hook([&](std::uint64_t, NeuronId n) { fired.push_back(n); });
  h.sim->run(10);
  ASSERT_GE(fired.size(), 2u);
  EXPECT_EQ(fired[0], 0u);
  EXPECT_EQ(fired[1], 1u);  // driven by the 30-unit current across ranks
}

// --- STDP -------------------------------------------------------------------

/// Two neurons, one synapse 0 -> 1 with delay 1. Drive them with controlled
/// fire times by setting v above threshold directly; noise disabled.
struct StdpPair {
  Network net;
  runtime::Partition part{runtime::Partition::uniform(2, 1, 1)};
  comm::MpiTransport transport{1, comm::CommCostModel{}};
  std::unique_ptr<Simulator> sim;

  explicit StdpPair(SimulatorConfig cfg = make_config()) {
    net.add_neuron(IzhikevichParams::regular_spiking());
    net.add_neuron(IzhikevichParams::regular_spiking());
    net.add_synapse(0, {1, 10, 1, 0});
    net.finalize();
    net.enable_plasticity();
    sim = std::make_unique<Simulator>(net, part, transport, cfg);
  }

  static SimulatorConfig make_config() {
    SimulatorConfig cfg;
    cfg.noise_p8 = 0;
    cfg.stdp_enabled = true;
    cfg.stdp_window = 5;
    cfg.current_per_weight = 0.0f;  // keep dynamics fully controlled
    return cfg;
  }

  void force_fire(NeuronId n) { net.state(n).v = 31.0f; }
  std::int16_t weight() const { return net.synapse(0).weight; }
};

TEST(Stdp, CausalPairPotentiates) {
  StdpPair p;
  p.force_fire(0);
  p.sim->step();  // tick 0: pre fires, arrival scheduled for tick 1
  p.force_fire(1);
  p.sim->step();  // tick 1: post fires after the arrival -> LTP
  EXPECT_EQ(p.weight(), 11);
}

TEST(Stdp, AntiCausalPairDepresses) {
  StdpPair p;
  p.force_fire(1);
  p.sim->step();  // tick 0: post fires first
  p.force_fire(0);
  p.sim->step();  // tick 1: pre fires; arrival (tick 2) after post -> LTD
  EXPECT_EQ(p.weight(), 9);
}

TEST(Stdp, OutsideWindowNoChange) {
  StdpPair p;
  p.force_fire(0);
  p.sim->step();
  for (int i = 0; i < 10; ++i) p.sim->step();  // window is 5 ticks
  p.force_fire(1);
  p.sim->step();
  EXPECT_EQ(p.weight(), 10);
}

TEST(Stdp, WeightsClampAtBounds) {
  SimulatorConfig cfg = StdpPair::make_config();
  cfg.stdp_potentiation = 100;
  cfg.stdp_weight_max = 12;
  StdpPair p(cfg);
  p.force_fire(0);
  p.sim->step();
  p.force_fire(1);
  p.sim->step();
  EXPECT_EQ(p.weight(), 12);  // clamped, not 110
}

TEST(Stdp, ReportCountsPairings) {
  StdpPair p;
  p.force_fire(0);
  p.sim->step();
  p.force_fire(1);
  const auto before = p.sim->step();
  (void)before;
  p.force_fire(0);
  p.sim->step();  // post fired at tick 1, arrival tick 3 -> LTD
  SimulatorReport rep = p.sim->run(0);
  EXPECT_EQ(rep.potentiations, 1u);
  EXPECT_EQ(rep.depressions, 1u);
}

TEST(Stdp, RequiresPlasticityIndex) {
  Network net = small_net(64);  // finalized, but no plasticity index
  const runtime::Partition part = runtime::Partition::uniform(64, 1, 1);
  comm::MpiTransport transport(1, comm::CommCostModel{});
  SimulatorConfig cfg;
  cfg.stdp_enabled = true;
  EXPECT_THROW(Simulator(net, part, transport, cfg), std::invalid_argument);
}

TEST(Stdp, DeterministicAcrossRankCounts) {
  auto final_weights = [](int ranks) {
    Network net = small_net(256);
    net.enable_plasticity();
    const runtime::Partition part = runtime::Partition::uniform(256, ranks, 1);
    comm::MpiTransport transport(ranks, comm::CommCostModel{});
    SimulatorConfig cfg;
    cfg.stdp_enabled = true;
    Simulator sim(net, part, transport, cfg);
    sim.run(150);
    std::vector<std::int16_t> weights;
    for (std::uint64_t i = 0; i < net.num_synapses(); ++i) {
      weights.push_back(net.synapse(i).weight);
    }
    return weights;
  };
  const auto one = final_weights(1);
  const auto four = final_weights(4);
  EXPECT_EQ(one, four);
  // And learning actually happened somewhere.
  Network ref = small_net(256);
  bool changed = false;
  for (std::size_t i = 0; i < one.size(); ++i) {
    if (one[i] != ref.synapse(i).weight) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Stdp, PlasticityGrowsMemoryFootprint) {
  Network a = small_net(128);
  const std::uint64_t before = a.total_bytes();
  a.enable_plasticity();
  EXPECT_GT(a.total_bytes(), before);  // the heavyweight-synapse trade-off
}

TEST(C2Simulator, MemoryAccountingDominatedBySynapses) {
  const Network net = small_net(1024);
  EXPECT_GT(net.total_bytes(), net.synapse_bytes());
  EXPECT_GE(net.synapse_bytes(), net.num_synapses() * sizeof(Synapse));
}

}  // namespace
}  // namespace compass::c2
