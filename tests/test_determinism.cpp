// Determinism suite: the functional half of the simulator — and, with host
// timers off, the entire trace — must be a pure function of (model, seed,
// partition, transport), regardless of
//   * parallel_execution on or off,
//   * how many OpenMP threads execute the emulated ranks,
//   * how many times the run is repeated in one process.
//
// Traces are compared as serialized JSONL with host-measured fields excluded
// (JsonlOptions::include_measured = false) and the measure flag off, so
// every compared byte — including the modelled communication times — must
// reproduce exactly.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <sstream>
#include <string>

#include "arch/kernels.h"
#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "comm/pgas_transport.h"
#include "compiler/pcc.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/compass.h"

namespace compass {
namespace {

compiler::PccResult build_fixed_model() {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  mopt.seed = 2012;
  compiler::PccOptions popt;
  popt.ranks = 3;
  popt.threads_per_rank = 2;
  return compiler::compile(cocomac::build_macaque_spec(mopt), popt);
}

struct DeterministicRun {
  runtime::RunReport report;
  std::string trace_jsonl;  // fully deterministic serialization
};

DeterministicRun run_once(const compiler::PccResult& pcc, bool parallel,
                          bool use_pgas = false) {
  arch::Model model = pcc.model;
  std::unique_ptr<comm::Transport> transport;
  if (use_pgas) {
    transport = std::make_unique<comm::PgasTransport>(pcc.partition.ranks(),
                                                      comm::CommCostModel{});
  } else {
    transport = std::make_unique<comm::MpiTransport>(pcc.partition.ranks(),
                                                     comm::CommCostModel{});
  }
  runtime::Config cfg;
  cfg.parallel_execution = parallel;
  cfg.measure = false;  // modelled times only: the whole trace is reproducible
  runtime::Compass sim(model, pcc.partition, *transport, cfg);

  // Profiling on: the end-of-run "profile" record (imbalance, critical-rank
  // counts, comm matrix) joins the compared bytes, so the profiler itself is
  // locked down as deterministic too.
  obs::ProfileCollector profiler(pcc.partition.ranks());
  sim.set_profile(&profiler);

  std::ostringstream os;
  obs::JsonlTraceWriter writer(os, obs::JsonlOptions{.include_measured = false});
  sim.add_trace_sink(&writer);

  DeterministicRun out;
  out.report = sim.run(50);
  out.trace_jsonl = os.str();
  return out;
}

void expect_equivalent(const DeterministicRun& a, const DeterministicRun& b) {
  EXPECT_EQ(a.report.ticks, b.report.ticks);
  EXPECT_EQ(a.report.fired_spikes, b.report.fired_spikes);
  EXPECT_EQ(a.report.routed_spikes, b.report.routed_spikes);
  EXPECT_EQ(a.report.local_spikes, b.report.local_spikes);
  EXPECT_EQ(a.report.remote_spikes, b.report.remote_spikes);
  EXPECT_EQ(a.report.synaptic_events, b.report.synaptic_events);
  EXPECT_EQ(a.report.messages, b.report.messages);
  EXPECT_EQ(a.report.wire_bytes, b.report.wire_bytes);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
}

TEST(Determinism, RepeatedRunsAreByteIdentical) {
  const compiler::PccResult pcc = build_fixed_model();
  const DeterministicRun first = run_once(pcc, /*parallel=*/false);
  const DeterministicRun second = run_once(pcc, /*parallel=*/false);
  ASSERT_FALSE(first.trace_jsonl.empty());
  expect_equivalent(first, second);
}

TEST(Determinism, ParallelExecutionMatchesSerial) {
  const compiler::PccResult pcc = build_fixed_model();
  const DeterministicRun serial = run_once(pcc, /*parallel=*/false);
  const DeterministicRun parallel = run_once(pcc, /*parallel=*/true);
  expect_equivalent(serial, parallel);
}

TEST(Determinism, PgasRepeatedRunsAreByteIdentical) {
  const compiler::PccResult pcc = build_fixed_model();
  const DeterministicRun first = run_once(pcc, /*parallel=*/false, true);
  const DeterministicRun second = run_once(pcc, /*parallel=*/true, true);
  expect_equivalent(first, second);
}

TEST(Determinism, IndependentOfOmpThreadCount) {
#ifdef _OPENMP
  const compiler::PccResult pcc = build_fixed_model();
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const DeterministicRun baseline = run_once(pcc, /*parallel=*/true);
  for (const int threads : {2, 8}) {
    omp_set_num_threads(threads);
    const DeterministicRun run = run_once(pcc, /*parallel=*/true);
    SCOPED_TRACE("OMP threads = " + std::to_string(threads));
    expect_equivalent(baseline, run);
  }
  omp_set_num_threads(saved);
#else
  GTEST_SKIP() << "built without OpenMP; thread-count sweep not applicable";
#endif
}

TEST(Determinism, BitParallelEngineMatchesReferenceEngine) {
  // The hot-loop engine toggle (arch/kernels.h) must be unobservable: a full
  // model run with the bit-parallel kernels produces byte-identical traces —
  // spikes, modelled times, profiler records — to the same run with the
  // original scalar walks forced everywhere.
  const compiler::PccResult pcc = build_fixed_model();
  const arch::kernels::Engine saved = arch::kernels::engine();
  arch::kernels::set_engine(arch::kernels::Engine::kBitParallel);
  const DeterministicRun kernels_run = run_once(pcc, /*parallel=*/false);
  arch::kernels::set_engine(arch::kernels::Engine::kReference);
  const DeterministicRun reference_run = run_once(pcc, /*parallel=*/false);
  arch::kernels::set_engine(saved);
  ASSERT_FALSE(kernels_run.trace_jsonl.empty());
  expect_equivalent(kernels_run, reference_run);
}

TEST(Determinism, MeasuredRunsKeepFunctionalCountersStable) {
  // With host timers ON the time fields wobble, but the functional counters
  // must not.
  const compiler::PccResult pcc = build_fixed_model();
  auto run_measured = [&](bool parallel) {
    arch::Model model = pcc.model;
    comm::MpiTransport transport(3, comm::CommCostModel{});
    runtime::Config cfg;
    cfg.parallel_execution = parallel;
    runtime::Compass sim(model, pcc.partition, transport, cfg);
    return sim.run(30);
  };
  const runtime::RunReport a = run_measured(false);
  const runtime::RunReport b = run_measured(true);
  EXPECT_EQ(a.fired_spikes, b.fired_spikes);
  EXPECT_EQ(a.routed_spikes, b.routed_spikes);
  EXPECT_EQ(a.local_spikes, b.local_spikes);
  EXPECT_EQ(a.remote_spikes, b.remote_spikes);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
}

}  // namespace
}  // namespace compass
