// Unit tests for the streaming statistics accumulators.
#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace compass::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStats, LargeStreamIsStable) {
  // Welford should not lose precision on a long, offset stream.
  RunningStats s;
  const double offset = 1e9;
  for (int i = 0; i < 100000; ++i) s.add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

TEST(Histogram, BinsAndTotals) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bin_count(i), 1u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, QuantileMedian) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 1.5);
}

TEST(Histogram, QuantileOfEmptyIsLowerBound) {
  Histogram h(5.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, BinLowerEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 18.0);
}

}  // namespace
}  // namespace compass::util
