// Tests for the synthetic CoCoMac database, the paper's reduction
// procedure, and the macaque CoreObject spec builder.
#include "cocomac/graph.h"

#include <gtest/gtest.h>

#include <set>

#include "cocomac/macaque.h"

namespace compass::cocomac {
namespace {

using compiler::RegionClass;

TEST(CocomacRaw, PublishedAggregateStatistics) {
  const RawGraph g = build_synthetic_cocomac();
  EXPECT_EQ(g.regions.size(), 383u);   // "383 hierarchically organized regions"
  EXPECT_EQ(g.edges.size(), 6602u);    // "6,602 directed edges"
  EXPECT_EQ(g.num_parents(), 102u);    // reduced network size
}

TEST(CocomacRaw, EdgesAreDistinctAndWellFormed) {
  const RawGraph g = build_synthetic_cocomac();
  std::set<std::pair<int, int>> seen;
  for (const auto& e : g.edges) {
    EXPECT_GE(e.first, 0);
    EXPECT_LT(e.first, static_cast<int>(g.regions.size()));
    EXPECT_GE(e.second, 0);
    EXPECT_LT(e.second, static_cast<int>(g.regions.size()));
    EXPECT_TRUE(seen.insert(e).second) << "duplicate edge";
  }
}

TEST(CocomacRaw, ChildrenPointAtValidParents) {
  const RawGraph g = build_synthetic_cocomac();
  for (const RawRegion& r : g.regions) {
    if (r.parent >= 0) {
      ASSERT_LT(r.parent, static_cast<int>(g.regions.size()));
      EXPECT_EQ(g.regions[static_cast<std::size_t>(r.parent)].parent, -1)
          << "hierarchy must be two-level";
      EXPECT_EQ(r.cls, g.regions[static_cast<std::size_t>(r.parent)].cls);
    }
  }
}

TEST(CocomacRaw, ReportingChildrenImplyReportingParents) {
  const RawGraph g = build_synthetic_cocomac();
  for (const RawRegion& r : g.regions) {
    if (r.parent >= 0 && r.reports) {
      EXPECT_TRUE(g.regions[static_cast<std::size_t>(r.parent)].reports);
    }
  }
}

TEST(CocomacRaw, DeterministicForFixedSeed) {
  const RawGraph a = build_synthetic_cocomac(123);
  const RawGraph b = build_synthetic_cocomac(123);
  EXPECT_EQ(a.edges, b.edges);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].name, b.regions[i].name);
    EXPECT_EQ(a.regions[i].reports, b.regions[i].reports);
  }
}

TEST(CocomacRaw, DifferentSeedsDiffer) {
  const RawGraph a = build_synthetic_cocomac(1);
  const RawGraph b = build_synthetic_cocomac(2);
  EXPECT_NE(a.edges, b.edges);
}

TEST(CocomacReduce, To102RegionsWith77Reporting) {
  const ReducedGraph g = reduce(build_synthetic_cocomac());
  EXPECT_EQ(g.num_regions(), 102u);
  EXPECT_EQ(g.num_reporting(), 77u);  // "102 regions, 77 of which report"
}

TEST(CocomacReduce, NoSelfLoops) {
  const ReducedGraph g = reduce(build_synthetic_cocomac());
  for (std::size_t i = 0; i < g.num_regions(); ++i) {
    EXPECT_EQ(g.adjacency(i, i), 0);
  }
}

TEST(CocomacReduce, EdgesOnlyBetweenReportingRegions) {
  const ReducedGraph g = reduce(build_synthetic_cocomac());
  for (std::size_t s = 0; s < g.num_regions(); ++s) {
    for (std::size_t t = 0; t < g.num_regions(); ++t) {
      if (g.adjacency(s, t)) {
        EXPECT_TRUE(g.reports[s]);
        EXPECT_TRUE(g.reports[t]);
      }
    }
  }
}

TEST(CocomacReduce, MergeOrsChildEdgesIntoParents) {
  // Hand-built raw graph: child C1 of A connects to B; after reduction the
  // edge must appear as A -> B.
  RawGraph raw;
  raw.regions.push_back({"A", RegionClass::kCortical, -1, true});
  raw.regions.push_back({"B", RegionClass::kCortical, -1, true});
  raw.regions.push_back({"A_c", RegionClass::kCortical, 0, true});
  raw.edges.push_back({2, 1});  // A_c -> B
  const ReducedGraph g = reduce(raw);
  EXPECT_EQ(g.num_regions(), 2u);
  EXPECT_EQ(g.adjacency(0, 1), 1);
  EXPECT_EQ(g.adjacency(1, 0), 0);
}

TEST(CocomacReduce, ChildReportingPropagatesToParent) {
  RawGraph raw;
  raw.regions.push_back({"P", RegionClass::kThalamic, -1, false});
  raw.regions.push_back({"P_c", RegionClass::kThalamic, 0, true});
  const ReducedGraph g = reduce(raw);
  EXPECT_TRUE(g.reports[0]);
}

TEST(CocomacReduce, IntraRegionEdgeBecomesDroppedSelfLoop) {
  RawGraph raw;
  raw.regions.push_back({"P", RegionClass::kCortical, -1, true});
  raw.regions.push_back({"P_a", RegionClass::kCortical, 0, true});
  raw.regions.push_back({"P_b", RegionClass::kCortical, 0, true});
  raw.edges.push_back({1, 2});  // between siblings -> self loop -> dropped
  const ReducedGraph g = reduce(raw);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CocomacReduce, KeyRegionsPresentAndReporting) {
  const ReducedGraph g = reduce(build_synthetic_cocomac());
  for (const char* name : {"V1", "V2", "MT", "LGN", "FEF", "CD"}) {
    const int idx = g.index_of(name);
    ASSERT_GE(idx, 0) << name;
    EXPECT_TRUE(g.reports[static_cast<std::size_t>(idx)]) << name;
  }
  EXPECT_EQ(g.index_of("NoSuchArea"), -1);
}

TEST(CocomacReduce, ReasonableDensityAmongReporting) {
  const ReducedGraph g = reduce(build_synthetic_cocomac());
  const double reporting = static_cast<double>(g.num_reporting());
  const double density =
      static_cast<double>(g.num_edges()) / (reporting * (reporting - 1.0));
  // Macaque cortical graphs are dense at this resolution (~0.2-0.7 after
  // collapsing 6602 study edges onto 77 regions).
  EXPECT_GT(density, 0.15);
  EXPECT_LT(density, 0.85);
}

TEST(MacaqueSpec, SeventySevenRegionsWithPaperSelfFractions) {
  const compiler::Spec spec = build_macaque_spec();
  EXPECT_EQ(spec.regions.size(), 77u);
  EXPECT_EQ(spec.validate(), "");
  for (const compiler::RegionDecl& r : spec.regions) {
    if (r.cls == RegionClass::kCortical) {
      EXPECT_DOUBLE_EQ(r.self_fraction, 0.4);  // 60/40 split
    } else {
      EXPECT_DOUBLE_EQ(r.self_fraction, 0.2);  // 80/20 split
    }
  }
}

TEST(MacaqueSpec, ExactlyThirteenUnknownVolumes) {
  const compiler::Spec spec = build_macaque_spec();
  unsigned unknown_cortical = 0, unknown_thalamic = 0, unknown_other = 0;
  for (const compiler::RegionDecl& r : spec.regions) {
    if (!r.volume) {
      if (r.cls == RegionClass::kCortical) {
        ++unknown_cortical;
      } else if (r.cls == RegionClass::kThalamic) {
        ++unknown_thalamic;
      } else {
        ++unknown_other;
      }
    }
  }
  EXPECT_EQ(unknown_cortical, 5u);   // section V-A
  EXPECT_EQ(unknown_thalamic, 8u);
  EXPECT_EQ(unknown_other, 0u);
}

TEST(MacaqueSpec, EdgesMatchReducedGraph) {
  const ReducedGraph g = reduce(build_synthetic_cocomac());
  const compiler::Spec spec = build_macaque_spec();
  std::size_t expected = 0;
  for (std::size_t s = 0; s < g.num_regions(); ++s) {
    for (std::size_t t = 0; t < g.num_regions(); ++t) {
      if (g.adjacency(s, t) && g.reports[s] && g.reports[t]) ++expected;
    }
  }
  EXPECT_EQ(spec.edges.size(), expected);
}

TEST(MacaqueSpec, HonoursOptions) {
  MacaqueSpecOptions opt;
  opt.total_cores = 512;
  opt.seed = 9;
  opt.rate_hz = 12.5;
  const compiler::Spec spec = build_macaque_spec(opt);
  EXPECT_EQ(spec.total_cores, 512u);
  EXPECT_EQ(spec.seed, 9u);
  for (const auto& r : spec.regions) EXPECT_DOUBLE_EQ(r.rate_hz, 12.5);
}

TEST(MacaqueSpec, VolumesVaryAcrossRegions) {
  const compiler::Spec spec = build_macaque_spec();
  std::set<double> volumes;
  for (const auto& r : spec.regions) {
    if (r.volume) volumes.insert(*r.volume);
  }
  EXPECT_GT(volumes.size(), 50u);  // lognormal draws, effectively all distinct
}

TEST(MacaqueSpec, LgnProjectsToV1) {
  // Figure 3's worked example region must participate in the visual stream.
  const compiler::Spec spec = build_macaque_spec();
  bool found = false;
  for (const auto& e : spec.edges) {
    if (e.src == "LGN" && e.dst == "V1") found = true;
  }
  EXPECT_TRUE(found) << "synthetic graph must include the LGN->V1 pathway";
}

}  // namespace
}  // namespace compass::cocomac
