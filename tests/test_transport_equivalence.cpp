// Transport equivalence suite: for a fixed seeded model, the MPI (two-sided,
// aggregated messages + Reduce-Scatter) and PGAS (one-sided puts + barrier)
// transports must be *functionally indistinguishable* — byte-identical spike
// delivery, identical fired/routed/local/remote counts, and identical
// membrane trajectories tick by tick. Only virtual times and message counts
// may differ (PGAS sends one put per (thread, destination) instead of one
// aggregated message per destination, and pays different modelled costs).
//
// This pins down the core claim the simulator's figure 7 rests on: the two
// communication models race on *cost*, not on simulation semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "comm/pgas_transport.h"
#include "compiler/pcc.h"
#include "runtime/compass.h"

namespace compass {
namespace {

constexpr arch::Tick kTicks = 40;

compiler::PccResult build_fixed_model() {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  mopt.seed = 2012;
  compiler::PccOptions popt;
  popt.ranks = 3;
  popt.threads_per_rank = 2;
  return compiler::compile(cocomac::build_macaque_spec(mopt), popt);
}

using SpikeEvent = std::tuple<arch::Tick, arch::CoreId, unsigned>;

struct RunResult {
  runtime::RunReport report;
  std::vector<SpikeEvent> spikes;
  std::vector<std::uint64_t> per_tick_messages;
};

/// Run `ticks` ticks, asserting after every tick that the evolving machine
/// state matches `reference` (when given) — that is the membrane-trajectory
/// equivalence: arch::Model equality covers every membrane potential, delay
/// buffer, and per-core PRNG state.
RunResult run_with(comm::Transport& transport, arch::Model model,
                   const runtime::Partition& partition,
                   const std::vector<arch::Model>* reference,
                   std::vector<arch::Model>* capture) {
  runtime::Compass sim(model, partition, transport);
  RunResult out;
  sim.set_spike_hook([&out](arch::Tick t, arch::CoreId c, unsigned j) {
    out.spikes.emplace_back(t, c, j);
  });
  for (arch::Tick t = 0; t < kTicks; ++t) {
    sim.step();
    out.per_tick_messages.push_back(transport.tick_stats().messages);
    if (capture != nullptr) capture->push_back(model);
    if (reference != nullptr && !(model == (*reference)[t])) {
      ADD_FAILURE() << "state diverged from the reference transport at tick "
                    << t;
      break;
    }
  }
  // run(0) executes no further ticks; it just folds the ledger totals into
  // the returned report (stepping manually leaves report().virtual_time
  // unsynced).
  out.report = sim.run(0);
  return out;
}

TEST(TransportEquivalence, MpiAndPgasAreFunctionallyIdentical) {
  const compiler::PccResult pcc = build_fixed_model();

  comm::MpiTransport mpi(3, comm::CommCostModel{});
  std::vector<arch::Model> mpi_states;
  mpi_states.reserve(kTicks);
  const RunResult mpi_run =
      run_with(mpi, pcc.model, pcc.partition, nullptr, &mpi_states);

  comm::PgasTransport pgas(3, comm::CommCostModel{});
  const RunResult pgas_run =
      run_with(pgas, pcc.model, pcc.partition, &mpi_states, nullptr);

  // Functional counters are exactly equal.
  EXPECT_EQ(mpi_run.report.fired_spikes, pgas_run.report.fired_spikes);
  EXPECT_EQ(mpi_run.report.routed_spikes, pgas_run.report.routed_spikes);
  EXPECT_EQ(mpi_run.report.local_spikes, pgas_run.report.local_spikes);
  EXPECT_EQ(mpi_run.report.remote_spikes, pgas_run.report.remote_spikes);
  EXPECT_EQ(mpi_run.report.synaptic_events, pgas_run.report.synaptic_events);

  // Spike delivery is byte-identical: same events in the same order (ranks
  // execute in a fixed order under a spike hook).
  ASSERT_EQ(mpi_run.spikes.size(), pgas_run.spikes.size());
  EXPECT_TRUE(mpi_run.spikes == pgas_run.spikes);

  // Sanity: the runs actually exercised remote traffic.
  EXPECT_GT(mpi_run.report.remote_spikes, 0u);
  EXPECT_GT(mpi_run.report.messages, 0u);
}

TEST(TransportEquivalence, OnlyCostAndMessageCountsMayDiffer) {
  const compiler::PccResult pcc = build_fixed_model();

  comm::MpiTransport mpi(3, comm::CommCostModel{});
  const RunResult mpi_run =
      run_with(mpi, pcc.model, pcc.partition, nullptr, nullptr);
  comm::PgasTransport pgas(3, comm::CommCostModel{});
  const RunResult pgas_run =
      run_with(pgas, pcc.model, pcc.partition, nullptr, nullptr);

  // PGAS puts one message per (thread, destination) with no aggregation, so
  // with threads_per_rank == 2 it sends at least as many messages as MPI.
  EXPECT_GE(pgas_run.report.messages, mpi_run.report.messages);
  // Wire bytes ride on spike counts, which are equal.
  EXPECT_EQ(mpi_run.report.wire_bytes, pgas_run.report.wire_bytes);
  // Virtual times are allowed to (and here do) differ: the cost models are
  // different machines.
  EXPECT_NE(mpi_run.report.virtual_time.network,
            pgas_run.report.virtual_time.network);
}

TEST(TransportEquivalence, HoldsOnASecondSeedAndShape) {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 96;
  mopt.seed = 7;
  compiler::PccOptions popt;
  popt.ranks = 4;
  popt.threads_per_rank = 1;
  const compiler::PccResult pcc =
      compiler::compile(cocomac::build_macaque_spec(mopt), popt);

  comm::MpiTransport mpi(4, comm::CommCostModel{});
  std::vector<arch::Model> mpi_states;
  const RunResult mpi_run =
      run_with(mpi, pcc.model, pcc.partition, nullptr, &mpi_states);
  comm::PgasTransport pgas(4, comm::CommCostModel{});
  const RunResult pgas_run =
      run_with(pgas, pcc.model, pcc.partition, &mpi_states, nullptr);

  EXPECT_EQ(mpi_run.report.fired_spikes, pgas_run.report.fired_spikes);
  EXPECT_TRUE(mpi_run.spikes == pgas_run.spikes);
  // With one thread per rank, PGAS puts and MPI aggregated messages coincide
  // one-to-one per (source, destination) pair each tick.
  EXPECT_EQ(mpi_run.per_tick_messages, pgas_run.per_tick_messages);
}

}  // namespace
}  // namespace compass
