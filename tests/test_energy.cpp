// Tests for the TrueNorth power-estimation model (perf/energy.h).
#include "perf/energy.h"

#include <gtest/gtest.h>

namespace compass::perf {
namespace {

TEST(Energy, ZeroActivityHasOnlyStaticPower) {
  const EnergyEstimate e = estimate_energy(/*cores=*/100, /*ticks=*/1000,
                                           /*spikes=*/0, /*synaptic_events=*/0);
  EXPECT_DOUBLE_EQ(e.spike_j, 0.0);
  EXPECT_DOUBLE_EQ(e.synapse_j, 0.0);
  EXPECT_GT(e.static_j, 0.0);
  EXPECT_DOUBLE_EQ(e.total_j, e.static_j);
}

TEST(Energy, ComponentsSumToTotal) {
  const EnergyEstimate e = estimate_energy(10, 100, 5000, 200000);
  EXPECT_NEAR(e.total_j, e.spike_j + e.synapse_j + e.static_j, 1e-18);
}

TEST(Energy, SpikeEnergyMatchesCiccNumber) {
  EnergyParams p;
  p.spike_pj = 45.0;  // Merolla et al., CICC 2011
  p.synaptic_event_pj = 0.0;
  p.core_tick_pj = 0.0;
  const EnergyEstimate e = estimate_energy(1, 1000, 1000000, 0, p);
  EXPECT_NEAR(e.total_j, 1e6 * 45e-12, 1e-12);
}

TEST(Energy, AveragePowerOverBiologicalTime) {
  // 1000 ticks == 1 biological second, so watts == joules.
  const EnergyEstimate e = estimate_energy(10, 1000, 1000, 10000);
  EXPECT_NEAR(e.avg_watts, e.total_j, 1e-15);
  EXPECT_NEAR(e.watts_per_core, e.avg_watts / 10.0, 1e-18);
}

TEST(Energy, ZeroTicksYieldsZeroPower) {
  const EnergyEstimate e = estimate_energy(10, 0, 0, 0);
  EXPECT_DOUBLE_EQ(e.avg_watts, 0.0);
}

TEST(Energy, ZeroCoresYieldsZeroPerCorePower) {
  // Degenerate but reachable from a caller that sizes a system to zero;
  // neither average nor per-core power may divide by zero.
  const EnergyEstimate e = estimate_energy(0, 1000, 500, 5000);
  EXPECT_DOUBLE_EQ(e.watts_per_core, 0.0);
  EXPECT_GT(e.avg_watts, 0.0);  // spike energy still counts
  EXPECT_DOUBLE_EQ(e.static_j, 0.0);
}

TEST(Energy, ScalesLinearlyInEverything) {
  const EnergyEstimate a = estimate_energy(10, 100, 1000, 10000);
  const EnergyEstimate b = estimate_energy(20, 200, 2000, 20000);
  EXPECT_NEAR(b.spike_j, 2 * a.spike_j, 1e-15);
  EXPECT_NEAR(b.synapse_j, 2 * a.synapse_j, 1e-15);
  EXPECT_NEAR(b.static_j, 4 * a.static_j, 1e-15);  // cores x ticks
}

TEST(Energy, ChipEnvelopeAtTypicalRates) {
  // A 4096-core TrueNorth chip at ~10 Hz mean rate and ~64 synaptic events
  // per spike should land in the tens-of-mW envelope the project targeted.
  const std::uint64_t cores = 4096, ticks = 1000;
  const std::uint64_t spikes =
      cores * 256 * 10 / 1000 * ticks;  // 10 Hz x 1M neurons x 1 s
  const EnergyEstimate e = estimate_energy(cores, ticks, spikes, spikes * 64);
  EXPECT_GT(e.avg_watts, 0.001);
  EXPECT_LT(e.avg_watts, 0.5);
}

}  // namespace
}  // namespace compass::perf
