// Placement-subsystem lockdown suite (ctest label: place).
//
// Covers the core graph extractor, the objective/evaluator, every policy's
// structural invariants (coverage, load bounds, node-map validity,
// determinism), greedy-refine's never-worse guarantee, the snake-curve
// embedding, placement-file round-trip + fuzzing, the PCC integration's
// model-identity guarantee, and — the acceptance-critical one — exact
// agreement between the evaluator's predicted off-diagonal wire bytes and
// the profiler's measured CommMatrix on a deterministic run.
#include "place/placer.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "comm/torus.h"
#include "compiler/pcc.h"
#include "obs/profile.h"
#include "place/comm_graph.h"
#include "place/placement.h"
#include "runtime/compass.h"

namespace compass::place {
namespace {

using DE = DirectedEdge;

CoreGraph line_graph(std::size_t cores, double weight = 1.0) {
  std::vector<DE> edges;
  for (std::size_t c = 0; c + 1 < cores; ++c) {
    edges.push_back(DE{static_cast<arch::CoreId>(c),
                       static_cast<arch::CoreId>(c + 1), weight});
  }
  return CoreGraph::from_directed_edges(cores, edges);
}

// --- CoreGraph --------------------------------------------------------------

TEST(CoreGraph, MergesDirectionsAndDuplicates) {
  const std::vector<DE> edges = {{0, 1, 2.0}, {1, 0, 3.0}, {0, 1, 1.0},
                                 {2, 0, 4.0}};
  const CoreGraph g = CoreGraph::from_directed_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 2u);
  ASSERT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 6.0);
  EXPECT_EQ(g.neighbors(0)[1].to, 2u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[1].weight, 4.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 10.0);
}

TEST(CoreGraph, SelfEdgesFoldIntoSelfWeight) {
  const std::vector<DE> edges = {{0, 0, 5.0}, {1, 1, 2.0}, {0, 1, 1.0}};
  const CoreGraph g = CoreGraph::from_directed_edges(2, edges);
  EXPECT_DOUBLE_EQ(g.self_weight(), 7.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 1.0);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(CoreGraph, RejectsBadEdges) {
  const std::vector<DE> out_of_range = {{0, 9, 1.0}};
  EXPECT_THROW(CoreGraph::from_directed_edges(2, out_of_range),
               std::invalid_argument);
  const std::vector<DE> negative = {{0, 1, -1.0}};
  EXPECT_THROW(CoreGraph::from_directed_edges(2, negative),
               std::invalid_argument);
}

TEST(CoreGraph, ExtractionMatchesModelTargets) {
  arch::Model model(3, /*seed=*/1);
  arch::NeuronParams params;
  // Core 0's neurons all target core 1; core 1's all target core 2; core 2
  // splits between itself and core 0.
  for (unsigned j = 0; j < arch::kNeuronsPerCore; ++j) {
    model.core(0).configure_neuron(
        j, params, arch::AxonTarget{1, static_cast<std::uint8_t>(j), 1});
    model.core(1).configure_neuron(
        j, params, arch::AxonTarget{2, static_cast<std::uint8_t>(j), 1});
    model.core(2).configure_neuron(
        j, params,
        arch::AxonTarget{j % 2 == 0 ? arch::CoreId{2} : arch::CoreId{0},
                         static_cast<std::uint8_t>(j), 1});
  }
  const CoreGraph g = extract_comm_graph(model);
  // 0-1: 256, 1-2: 256, 2-0: 128; self 2-2: 128 (never cuttable).
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 256.0 + 256.0 + 128.0);
  EXPECT_DOUBLE_EQ(g.self_weight(), 128.0);
}

TEST(CoreGraph, ExtractionWeighsByRegionRate) {
  arch::Model model(2, 1);
  model.set_region(0, 0);
  model.set_region(1, 1);
  arch::NeuronParams params;
  for (unsigned j = 0; j < arch::kNeuronsPerCore; ++j) {
    model.core(0).configure_neuron(j, params,
                                   arch::AxonTarget{1, std::uint8_t(j), 1});
    model.core(1).configure_neuron(j, params,
                                   arch::AxonTarget{0, std::uint8_t(j), 1});
  }
  ExtractOptions opt;
  opt.region_rate_hz = {10.0, 30.0};  // spikes/tick: 0.01 and 0.03
  const CoreGraph g = extract_comm_graph(model, opt);
  EXPECT_NEAR(g.total_weight(), 256 * 0.01 + 256 * 0.03, 1e-9);

  ExtractOptions bad;
  bad.region_rate_hz = {10.0};  // region 1 outside the table
  EXPECT_THROW(extract_comm_graph(model, bad), std::invalid_argument);
}

// --- Objective / evaluator --------------------------------------------------

TEST(Evaluate, CountsOnlyCutEdgesAndHops) {
  // 4 cores in a line, unit weights; ranks {0,0,1,1} cut only edge 1-2.
  const CoreGraph g = line_graph(4);
  const runtime::Partition p =
      runtime::Partition::from_rank_assignment({0, 0, 1, 1}, 2, 1);
  const PlacementScore flat = evaluate(g, p, {}, nullptr);
  EXPECT_DOUBLE_EQ(flat.off_diag_weight, 1.0);
  EXPECT_DOUBLE_EQ(flat.objective, 1.0);

  const comm::TorusTopology topo({4, 1, 1, 1, 1});
  const std::vector<int> far = {0, 2};  // 2 hops apart on the ring of 4
  const PlacementScore hopped = evaluate(g, p, far, &topo);
  EXPECT_DOUBLE_EQ(hopped.off_diag_weight, 1.0);
  EXPECT_DOUBLE_EQ(hopped.hop_weight, 2.0);
  EXPECT_DOUBLE_EQ(hopped.objective, 3.0);
}

TEST(Evaluate, LoadStatistics) {
  const CoreGraph g = line_graph(6);
  const runtime::Partition p =
      runtime::Partition::from_rank_assignment({0, 0, 0, 0, 1, 1}, 2, 1);
  const PlacementScore s = evaluate(g, p, {}, nullptr);
  EXPECT_DOUBLE_EQ(s.max_load, 4.0);
  EXPECT_DOUBLE_EQ(s.mean_load, 3.0);
  EXPECT_NEAR(s.imbalance(), 4.0 / 3.0, 1e-12);
}

TEST(Evaluate, RejectsMismatchedShapes) {
  const CoreGraph g = line_graph(4);
  const runtime::Partition p = runtime::Partition::uniform(5, 2, 1);
  EXPECT_THROW(evaluate(g, p, {}, nullptr), PlacementError);
  const runtime::Partition ok = runtime::Partition::uniform(4, 2, 1);
  const comm::TorusTopology topo({2, 1, 1, 1, 1});
  const std::vector<int> short_map = {0};
  EXPECT_THROW(evaluate(g, ok, short_map, &topo), PlacementError);
  const std::vector<int> bad_node = {0, 7};
  EXPECT_THROW(evaluate(g, ok, bad_node, &topo), PlacementError);
}

TEST(EvaluateCommMatrix, OffDiagonalBytesOnly) {
  obs::CommMatrix m(3);
  m.record(0, 1, /*spikes=*/5, /*bytes=*/100);
  m.record(1, 2, 3, 60);
  m.record_local(0, 999);  // diagonal: never on the wire
  const PlacementScore s = evaluate_comm_matrix(m, {}, nullptr);
  EXPECT_DOUBLE_EQ(s.off_diag_weight, 160.0);
  EXPECT_DOUBLE_EQ(s.objective, 160.0);
  EXPECT_EQ(m.off_diagonal_total().bytes, 160u);
  EXPECT_EQ(m.off_diagonal_total().spikes, 8u);

  const comm::TorusTopology topo({3, 1, 1, 1, 1});
  const std::vector<int> map = {0, 1, 2};
  const PlacementScore h = evaluate_comm_matrix(m, map, &topo);
  EXPECT_DOUBLE_EQ(h.hop_weight, 100.0 * 1 + 60.0 * 1);
  EXPECT_DOUBLE_EQ(h.objective, 160.0 + 160.0);
}

// --- load_bounds ------------------------------------------------------------

TEST(LoadBounds, FeasibleAndOrdered) {
  for (std::size_t cores : {1u, 7u, 100u, 1024u}) {
    for (int ranks : {1, 3, 8, 64}) {
      for (double tol : {0.0, 0.05, 0.5}) {
        const LoadBounds b = load_bounds(cores, ranks, tol);
        EXPECT_LE(b.min_load, b.max_load);
        // A feasible assignment always exists within the bounds.
        EXPECT_GE(b.max_load * static_cast<std::size_t>(ranks), cores);
        EXPECT_LE(b.min_load * static_cast<std::size_t>(ranks), cores);
      }
    }
  }
  EXPECT_THROW(load_bounds(10, 0, 0.1), PlacementError);
}

// --- snake curve ------------------------------------------------------------

TEST(SnakeOrder, VisitsEveryNodeOnceOneHopApart) {
  for (const std::array<int, 5> dims :
       {std::array<int, 5>{4, 3, 2, 1, 1}, std::array<int, 5>{2, 2, 2, 2, 2},
        std::array<int, 5>{5, 1, 1, 1, 1}, std::array<int, 5>{1, 1, 1, 1, 1},
        std::array<int, 5>{3, 3, 3, 1, 1}}) {
    const comm::TorusTopology topo(dims);
    const std::vector<int> order = snake_order(topo);
    ASSERT_EQ(order.size(), static_cast<std::size_t>(topo.nodes()));
    std::vector<char> seen(order.size(), 0);
    for (int n : order) {
      ASSERT_GE(n, 0);
      ASSERT_LT(n, topo.nodes());
      EXPECT_EQ(seen[static_cast<std::size_t>(n)], 0);
      seen[static_cast<std::size_t>(n)] = 1;
    }
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      EXPECT_EQ(topo.hops(order[i], order[i + 1]), 1)
          << "dims " << dims[0] << dims[1] << dims[2] << " step " << i;
    }
  }
}

// --- Policy invariants ------------------------------------------------------

class PolicySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicySweep, CoverageBalanceNodeMapDeterminism) {
  const std::string policy = GetParam();
  // A ring of 96 cores: enough structure that optimisers actually move.
  std::vector<DE> edges;
  for (std::size_t c = 0; c < 96; ++c) {
    edges.push_back(DE{static_cast<arch::CoreId>(c),
                       static_cast<arch::CoreId>((c + 1) % 96), 1.0});
  }
  const CoreGraph g = CoreGraph::from_directed_edges(96, edges);

  const comm::TorusTopology topo = comm::TorusTopology::blue_gene_q(8);
  PlacerOptions opt;
  opt.ranks = 8;
  opt.threads_per_rank = 2;
  opt.seed = 7;
  opt.topology = &topo;
  const Placement a = make_placer(policy)->place(g, opt);
  const Placement b = make_placer(policy)->place(g, opt);

  EXPECT_EQ(a.policy, policy);
  EXPECT_EQ(a.partition.num_cores(), 96u);
  EXPECT_EQ(a.partition.ranks(), 8);
  EXPECT_EQ(a.partition.threads_per_rank(), 2);

  // Permutation-complete: every core exactly once across rank/thread spans.
  std::vector<int> seen(96, 0);
  for (int r = 0; r < 8; ++r) {
    for (arch::CoreId c : a.partition.cores_of(r)) ++seen[c];
  }
  for (int s : seen) EXPECT_EQ(s, 1);

  // Load-balance bounded.
  const LoadBounds bounds = load_bounds(96, 8, opt.balance_tolerance);
  for (int r = 0; r < 8; ++r) {
    EXPECT_GE(a.partition.cores_of(r).size(), bounds.min_load) << r;
    EXPECT_LE(a.partition.cores_of(r).size(), bounds.max_load) << r;
  }

  // Node map: one valid torus node per rank.
  ASSERT_EQ(a.node_of_rank.size(), 8u);
  for (int n : a.node_of_rank) {
    EXPECT_GE(n, 0);
    EXPECT_LT(n, topo.nodes());
  }
  EXPECT_EQ(a.torus_dims, topo.dims());

  // Deterministic: identical options give the identical placement.
  EXPECT_EQ(a.node_of_rank, b.node_of_rank);
  EXPECT_DOUBLE_EQ(a.predicted_objective, b.predicted_objective);
  for (std::size_t c = 0; c < 96; ++c) {
    EXPECT_EQ(a.partition.rank_of(static_cast<arch::CoreId>(c)),
              b.partition.rank_of(static_cast<arch::CoreId>(c)));
  }

  // The stored objective is the evaluator's score of the stored placement.
  EXPECT_DOUBLE_EQ(
      a.predicted_objective,
      objective(g, a.partition, a.node_of_rank, &topo));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Values("uniform", "random",
                                           "greedy-refine", "recursive-bisect",
                                           "sfc-torus"));

TEST(Placer, UnknownPolicyThrows) {
  EXPECT_THROW(make_placer("simulated-annealing"), PlacementError);
  EXPECT_EQ(placer_names().size(), 5u);
  for (const std::string& name : placer_names()) {
    EXPECT_EQ(make_placer(name)->name(), name);
  }
}

TEST(Placer, RejectsImpossibleOptions) {
  const CoreGraph g = line_graph(4);
  PlacerOptions opt;
  opt.ranks = 0;
  EXPECT_THROW(make_placer("uniform")->place(g, opt), PlacementError);
  opt.ranks = 2;
  opt.threads_per_rank = 0;
  EXPECT_THROW(make_placer("uniform")->place(g, opt), PlacementError);
  EXPECT_THROW(make_placer("uniform")->place(CoreGraph{}, PlacerOptions{}),
               PlacementError);
}

TEST(Placer, RandomSeedChangesAssignment) {
  const CoreGraph g = line_graph(64);
  PlacerOptions opt;
  opt.ranks = 4;
  opt.seed = 1;
  const Placement a = make_placer("random")->place(g, opt);
  opt.seed = 2;
  const Placement b = make_placer("random")->place(g, opt);
  bool any_differ = false;
  for (std::size_t c = 0; c < 64; ++c) {
    any_differ |= a.partition.rank_of(static_cast<arch::CoreId>(c)) !=
                  b.partition.rank_of(static_cast<arch::CoreId>(c));
  }
  EXPECT_TRUE(any_differ);
}

TEST(Placer, GreedyRefineNeverWorseThanUniform) {
  // Several graph shapes; greedy-refine's objective must never exceed
  // uniform's (it starts there and only takes strictly improving moves).
  const std::vector<std::vector<DE>> shapes = {
      // Ring.
      [] {
        std::vector<DE> e;
        for (std::size_t c = 0; c < 60; ++c) {
          e.push_back(DE{static_cast<arch::CoreId>(c),
                         static_cast<arch::CoreId>((c + 1) % 60), 1.0});
        }
        return e;
      }(),
      // Interleaved heavy pairs (uniform cuts all of them).
      [] {
        std::vector<DE> e;
        for (std::size_t c = 0; c < 30; ++c) {
          e.push_back(DE{static_cast<arch::CoreId>(c),
                         static_cast<arch::CoreId>(c + 30), 10.0});
        }
        return e;
      }(),
      // Two cliques-ish blobs joined by one edge.
      [] {
        std::vector<DE> e;
        for (std::size_t c = 0; c < 20; ++c) {
          for (std::size_t d = c + 1; d < 20; ++d) {
            e.push_back(DE{static_cast<arch::CoreId>(c),
                           static_cast<arch::CoreId>(d), 1.0});
            e.push_back(DE{static_cast<arch::CoreId>(40 + c),
                           static_cast<arch::CoreId>(40 + d), 1.0});
          }
        }
        e.push_back(DE{19, 40, 0.5});
        return e;
      }(),
  };
  for (const auto& edges : shapes) {
    std::size_t cores = 0;
    for (const DE& e : edges) {
      cores = std::max({cores, static_cast<std::size_t>(e.src) + 1,
                        static_cast<std::size_t>(e.dst) + 1});
    }
    const CoreGraph g = CoreGraph::from_directed_edges(cores, edges);
    for (int ranks : {2, 4, 6}) {
      const comm::TorusTopology topo = comm::TorusTopology::blue_gene_q(ranks);
      PlacerOptions opt;
      opt.ranks = ranks;
      opt.topology = &topo;
      const double uniform =
          make_placer("uniform")->place(g, opt).predicted_objective;
      const double refined =
          make_placer("greedy-refine")->place(g, opt).predicted_objective;
      EXPECT_LE(refined, uniform + 1e-9) << "ranks " << ranks;
    }
  }
}

TEST(Placer, SfcTorusNeverWorseThanIdentityEmbedding) {
  std::vector<DE> edges;
  for (std::size_t c = 0; c < 128; ++c) {
    // Long-range pairs: rank i talks mostly to rank (i + 3) mod 8 under a
    // uniform split, so the identity embedding is far from optimal.
    edges.push_back(DE{static_cast<arch::CoreId>(c),
                       static_cast<arch::CoreId>((c + 48) % 128), 4.0});
  }
  const CoreGraph g = CoreGraph::from_directed_edges(128, edges);
  const comm::TorusTopology topo = comm::TorusTopology::blue_gene_q(8);
  PlacerOptions opt;
  opt.ranks = 8;
  opt.topology = &topo;
  const Placement uniform = make_placer("uniform")->place(g, opt);
  const Placement sfc = make_placer("sfc-torus")->place(g, opt);
  // Same partition (sfc-torus only re-embeds ranks)...
  for (std::size_t c = 0; c < 128; ++c) {
    EXPECT_EQ(sfc.partition.rank_of(static_cast<arch::CoreId>(c)),
              uniform.partition.rank_of(static_cast<arch::CoreId>(c)));
  }
  // ...with a no-worse (here strictly better) hop-weighted objective.
  EXPECT_LE(sfc.predicted_objective, uniform.predicted_objective);
  EXPECT_LT(sfc.predicted_objective, uniform.predicted_objective);
}

// --- Placement file ---------------------------------------------------------

Placement sample_placement() {
  const CoreGraph g = line_graph(12);
  const comm::TorusTopology topo = comm::TorusTopology::blue_gene_q(4);
  PlacerOptions opt;
  opt.ranks = 4;
  opt.threads_per_rank = 3;
  opt.topology = &topo;
  return make_placer("greedy-refine")->place(g, opt);
}

TEST(PlacementFile, RoundTripsExactly) {
  const Placement original = sample_placement();
  std::stringstream ss;
  save_placement(ss, original);
  const Placement loaded = load_placement(ss);
  EXPECT_EQ(loaded.policy, original.policy);
  EXPECT_EQ(loaded.partition.num_cores(), original.partition.num_cores());
  EXPECT_EQ(loaded.partition.ranks(), original.partition.ranks());
  EXPECT_EQ(loaded.partition.threads_per_rank(),
            original.partition.threads_per_rank());
  for (std::size_t c = 0; c < original.partition.num_cores(); ++c) {
    EXPECT_EQ(loaded.partition.rank_of(static_cast<arch::CoreId>(c)),
              original.partition.rank_of(static_cast<arch::CoreId>(c)));
  }
  EXPECT_EQ(loaded.node_of_rank, original.node_of_rank);
  EXPECT_EQ(loaded.torus_dims, original.torus_dims);
  EXPECT_EQ(loaded.ranks_per_node, original.ranks_per_node);
  EXPECT_DOUBLE_EQ(loaded.predicted_objective, original.predicted_objective);
}

TEST(PlacementFile, MalformedInputsThrowTyped) {
  const auto load_str = [](const std::string& text) {
    std::istringstream is(text);
    return load_placement(is);
  };
  // Wrong magic / version / missing sections.
  EXPECT_THROW(load_str(""), PlacementError);
  EXPECT_THROW(load_str("bogus v1\n"), PlacementError);
  EXPECT_THROW(load_str("compass-placement v2\n"), PlacementError);
  EXPECT_THROW(load_str("compass-placement v1\npolicy x\ncores -3\n"),
               PlacementError);
  EXPECT_THROW(
      load_str("compass-placement v1\npolicy x\ncores 2\nranks 2\n"
               "threads 1\nranks_per_node 1\ntorus 0 1 1 1 1\n"),
      PlacementError);
  // Node id outside the declared torus.
  EXPECT_THROW(
      load_str("compass-placement v1\npolicy x\ncores 2\nranks 2\nthreads 1\n"
               "ranks_per_node 1\ntorus 2 1 1 1 1\nobjective 0\n"
               "nodes 0 5\nassign 0 1\n"),
      PlacementError);
  // Rank id outside [0, ranks): PartitionError, from the shared funnel.
  EXPECT_THROW(
      load_str("compass-placement v1\npolicy x\ncores 2\nranks 2\nthreads 1\n"
               "ranks_per_node 1\ntorus 2 1 1 1 1\nobjective 0\n"
               "nodes 0 1\nassign 0 7\n"),
      runtime::PartitionError);
  EXPECT_THROW(
      load_str("compass-placement v1\npolicy x\ncores 2\nranks 2\nthreads 1\n"
               "ranks_per_node 1\ntorus 2 1 1 1 1\nobjective 0\n"
               "nodes 0 1\nassign 0 -1\n"),
      runtime::PartitionError);
  // Truncated assign list.
  EXPECT_THROW(
      load_str("compass-placement v1\npolicy x\ncores 4\nranks 2\nthreads 1\n"
               "ranks_per_node 1\ntorus 2 1 1 1 1\nobjective 0\n"
               "nodes 0 1\nassign 0 1\n"),
      PlacementError);
  EXPECT_THROW(load_placement_file("/nonexistent/path.place"), PlacementError);
}

// --- Partition validation (satellite) ---------------------------------------

TEST(PartitionValidation, FromRankAssignmentThrowsTyped) {
  EXPECT_THROW(runtime::Partition::from_rank_assignment({}, 2, 1),
               runtime::PartitionError);
  EXPECT_THROW(runtime::Partition::from_rank_assignment({0, 2}, 2, 1),
               runtime::PartitionError);
  EXPECT_THROW(runtime::Partition::from_rank_assignment({0, -1}, 2, 1),
               runtime::PartitionError);
  EXPECT_THROW(runtime::Partition::from_rank_assignment({0}, 0, 1),
               runtime::PartitionError);
  EXPECT_THROW(runtime::Partition::from_rank_assignment({0}, 1, 0),
               runtime::PartitionError);
  EXPECT_NO_THROW(runtime::Partition::from_rank_assignment({1, 0}, 2, 1));
}

// --- PCC integration --------------------------------------------------------

TEST(PccPlacement, ModelIsByteIdenticalAcrossPolicies) {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 96;
  const compiler::Spec spec = cocomac::build_macaque_spec(mopt);

  compiler::PccOptions base;
  base.ranks = 6;
  const compiler::PccResult plain = compiler::compile(spec, base);
  EXPECT_FALSE(plain.placement.has_value());

  const comm::TorusTopology topo = comm::TorusTopology::blue_gene_q(6);
  for (const char* policy : {"greedy-refine", "recursive-bisect", "random"}) {
    compiler::PccOptions opt = base;
    opt.placement = policy;
    opt.placement_topology = &topo;
    const compiler::PccResult optimised = compiler::compile(spec, opt);
    ASSERT_TRUE(optimised.placement.has_value()) << policy;
    EXPECT_EQ(optimised.placement->policy, policy);
    // The placement swap happens after wiring: same model, bit for bit.
    EXPECT_TRUE(plain.model == optimised.model) << policy;
    // PccResult::partition is the optimised one.
    for (std::size_t c = 0; c < 96; ++c) {
      EXPECT_EQ(optimised.partition.rank_of(static_cast<arch::CoreId>(c)),
                optimised.placement->partition.rank_of(
                    static_cast<arch::CoreId>(c)));
    }
    // Region hosting ranks were recomputed to cover the scattered cores.
    for (const compiler::RegionInfo& info : optimised.regions) {
      const arch::CoreId end =
          info.first_core + static_cast<arch::CoreId>(info.cores);
      for (arch::CoreId c = info.first_core; c < end; ++c) {
        const int r = optimised.partition.rank_of(c);
        EXPECT_GE(r, info.first_rank);
        EXPECT_LE(r, info.last_rank);
      }
    }
  }
}

TEST(PccPlacement, UnknownPolicyThrows) {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  const compiler::Spec spec = cocomac::build_macaque_spec(mopt);
  compiler::PccOptions opt;
  opt.ranks = 2;
  opt.placement = "bogus";
  EXPECT_THROW(compiler::compile(spec, opt), PlacementError);
}

// --- Evaluator vs profiler: the exactness acceptance criterion --------------

TEST(MeasuredExactness, PredictedBytesEqualCommMatrixBytes) {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 128;
  const compiler::Spec spec = cocomac::build_macaque_spec(mopt);
  const comm::TorusTopology topo = comm::TorusTopology::blue_gene_q(8);
  compiler::PccOptions popt;
  popt.ranks = 8;
  popt.placement = "greedy-refine";
  popt.placement_topology = &topo;
  compiler::PccResult pcc = compiler::compile(spec, popt);

  comm::MpiTransport transport(popt.ranks, comm::CommCostModel{});
  transport.set_hop_model(&topo, pcc.placement->node_of_rank);
  runtime::Compass sim(pcc.model, pcc.partition, transport);
  obs::ProfileCollector collector(popt.ranks);
  sim.set_profile(&collector);

  // Record the run's actual core->core spike traffic: fired neuron (c, j)
  // delivers exactly one spike to its wired target core.
  std::map<std::pair<arch::CoreId, arch::CoreId>, double> traffic;
  const arch::Model& model = pcc.model;
  sim.set_spike_hook([&](arch::Tick, arch::CoreId c, unsigned j) {
    const arch::AxonTarget t = model.core(c).target(j);
    if (t.connected()) traffic[{c, t.core}] += 1.0;
  });
  const runtime::RunReport rep = sim.run(25);
  ASSERT_GT(rep.fired_spikes, 0u);

  std::vector<DE> edges;
  edges.reserve(traffic.size());
  for (const auto& [pair, count] : traffic) {
    edges.push_back(DE{pair.first, pair.second, count});
  }
  const CoreGraph measured =
      CoreGraph::from_directed_edges(model.num_cores(), edges);

  // Cut spikes == remote spikes, x wire bytes == wire bytes == the matrix's
  // off-diagonal byte total. Exactly — integer counts in doubles.
  const PlacementScore predicted =
      evaluate(measured, pcc.partition, pcc.placement->node_of_rank, &topo);
  const obs::CommMatrix& matrix = collector.comm_matrix();
  const double bytes_per_spike =
      static_cast<double>(transport.spike_wire_bytes());
  EXPECT_EQ(predicted.off_diag_weight,
            static_cast<double>(rep.remote_spikes));
  EXPECT_EQ(predicted.off_diag_weight * bytes_per_spike,
            static_cast<double>(rep.wire_bytes));
  EXPECT_EQ(predicted.off_diag_weight * bytes_per_spike,
            static_cast<double>(matrix.off_diagonal_total().bytes));

  // The hop-weighted objective agrees with rescoring the measured matrix.
  const PlacementScore rescored = evaluate_comm_matrix(
      matrix, pcc.placement->node_of_rank, &topo);
  EXPECT_EQ(predicted.objective * bytes_per_spike, rescored.objective);
}

}  // namespace
}  // namespace compass::place
