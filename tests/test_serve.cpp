// Serve plane lockdown (`ctest -L serve`): the wire codec, session
// semantics, and the loopback daemon end to end.
//
// The load-bearing contract is served-vs-local byte-identity: a served
// session given a fixed (scenario, seed, stimulus script) must stream
// exactly the spikes a local one-shot run of the same scenario produces —
// compared as serialized kSpikes payload bytes, not just counts. The local
// side below builds its model through the same compiler entry points the
// CLI uses and injects stimuli by hand, so it exercises none of
// src/serve/'s session code.
//
// Threading: each harness runs the daemon's single dispatcher thread;
// the test thread only talks to it through sockets. Server stats and trace
// buffers are read strictly after stop() joins the dispatcher.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "compiler/pcc.h"
#include "obs/analytics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/compass.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"

namespace compass {
namespace {

using serve::Client;
using serve::Cursor;
using serve::Errc;
using serve::FrameReader;
using serve::Op;
using serve::ProtocolError;
using serve::Scenario;
using serve::Session;
using serve::SpikeEvent;
using serve::Stream;

// --- harness ----------------------------------------------------------------

struct ServerHarness {
  explicit ServerHarness(serve::ServerOptions opts = {}) {
    opts.bind = "127.0.0.1";
    opts.port = 0;
    server = std::make_unique<serve::Server>(std::move(opts));
    dispatcher = std::thread([this] { server->run(); });
  }
  ~ServerHarness() { stop(); }
  void stop() {
    if (dispatcher.joinable()) {
      server->request_stop();
      dispatcher.join();
    }
  }
  std::uint16_t port() const { return server->port(); }

  std::unique_ptr<serve::Server> server;
  std::thread dispatcher;
};

// --- codec ------------------------------------------------------------------

TEST(ServeProtocol, IntegerEncodingRoundTrips) {
  std::vector<std::uint8_t> buf;
  serve::put_u8(buf, 0xAB);
  serve::put_u16(buf, 0xBEEF);
  serve::put_u32(buf, 0xDEADBEEFu);
  serve::put_u64(buf, 0x0123456789ABCDEFull);
  Cursor cur(buf);
  EXPECT_EQ(cur.u8(), 0xAB);
  EXPECT_EQ(cur.u16(), 0xBEEF);
  EXPECT_EQ(cur.u32(), 0xDEADBEEFu);
  EXPECT_EQ(cur.u64(), 0x0123456789ABCDEFull);
  cur.expect_done();
}

TEST(ServeProtocol, CursorRejectsTruncationAndTrailingBytes) {
  std::vector<std::uint8_t> buf;
  serve::put_u32(buf, 7);
  {
    Cursor cur(buf);
    cur.u16();
    EXPECT_THROW(cur.u32(), ProtocolError);  // 2 bytes left, 4 wanted
  }
  {
    Cursor cur(buf);
    cur.u16();
    EXPECT_THROW(cur.expect_done(), ProtocolError);  // trailing bytes
  }
  try {
    Cursor cur(buf);
    cur.u64();
    FAIL() << "u64 over 4 bytes must throw";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), Errc::kBadFrame);
  }
}

TEST(ServeProtocol, FrameReaderReassemblesByteAtATime) {
  std::vector<std::uint8_t> p = serve::payload(Op::kCloseSession);
  serve::put_u32(p, 42);
  const std::vector<std::uint8_t> wire = serve::frame(p);
  FrameReader reader;
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    reader.feed(&wire[i], 1);
    EXPECT_FALSE(reader.next(out));
  }
  reader.feed(&wire.back(), 1);
  ASSERT_TRUE(reader.next(out));
  EXPECT_EQ(out, p);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ServeProtocol, FrameReaderRejectsOversizedPrefix) {
  std::vector<std::uint8_t> wire;
  serve::put_u32(wire, serve::kMaxFramePayload + 1);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  std::vector<std::uint8_t> out;
  try {
    reader.next(out);
    FAIL() << "oversized prefix must throw";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), Errc::kFrameTooLarge);
  }
  EXPECT_THROW(serve::frame(std::vector<std::uint8_t>(
                   serve::kMaxFramePayload + 1)),
               ProtocolError);
}

// --- scenarios --------------------------------------------------------------

TEST(ServeScenario, AliasesAndExplicitFormsParse) {
  EXPECT_EQ(serve::parse_scenario("default").canonical, "macaque:77:2:1");
  EXPECT_EQ(serve::parse_scenario("tiny").canonical, "macaque:77:1:1");
  EXPECT_EQ(serve::parse_scenario("medium").canonical, "macaque:256:4:1");
  const Scenario s = serve::parse_scenario("macaque:128:4:2");
  EXPECT_EQ(s.total_cores, 128u);
  EXPECT_EQ(s.ranks, 4);
  EXPECT_EQ(s.threads_per_rank, 2);
  EXPECT_EQ(s.canonical, "macaque:128:4:2");
}

TEST(ServeScenario, BadFormsThrowTyped) {
  for (const char* bad :
       {"", "nope", "macaque", "macaque:", "macaque:77", "macaque:77:2:3:4",
        "macaque:abc:2", "macaque:77:0", "macaque:76:1", "macaque:5000:2",
        "macaque:77:65", "macaque:77:2:17"}) {
    try {
      serve::parse_scenario(bad);
      FAIL() << "scenario '" << bad << "' must be rejected";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), Errc::kBadScenario) << bad;
    }
  }
}

// --- session semantics ------------------------------------------------------

using Triple = std::tuple<std::uint64_t, std::uint32_t, std::uint16_t>;

std::vector<Triple> run_session(Session& session, std::uint64_t ticks) {
  std::vector<Triple> out;
  session.request(ticks);
  while (session.pending() > 0) {
    session.step(8, [&](std::uint64_t tick,
                        const std::vector<SpikeEvent>& spikes) {
      for (const SpikeEvent& s : spikes) out.emplace_back(tick, s.core, s.neuron);
    });
  }
  return out;
}

TEST(ServeSession, InjectValidationIsTyped) {
  Session session(serve::parse_scenario("tiny"), 2012);
  EXPECT_EQ(session.inject(serve::kImmediateTick, 0, 5), 0u);
  session.request(2);
  session.step(2, nullptr);
  try {
    session.inject(0, 0, 0);  // tick 0 already simulated
    FAIL();
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), Errc::kBadTick);
  }
  try {
    session.inject(serve::kImmediateTick, 100000, 0);  // core out of range
    FAIL();
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), Errc::kBadTick);
  }
  EXPECT_EQ(session.inject(serve::kImmediateTick, 0, 0), session.now());
}

TEST(ServeSession, FixedScriptReplaysIdentically) {
  const Scenario scenario = serve::parse_scenario("tiny");
  const auto script = [](Session& s) {
    for (std::uint64_t t = 0; t < 12; t += 3) {
      s.inject(t, static_cast<std::uint32_t>(t % 7),
               static_cast<std::uint16_t>(11 * t % 256));
    }
  };
  Session a(scenario, 99);
  script(a);
  const std::vector<Triple> ta = run_session(a, 12);
  Session b(scenario, 99);
  script(b);
  const std::vector<Triple> tb = run_session(b, 12);
  EXPECT_FALSE(ta.empty()) << "script must provoke at least one spike";
  EXPECT_EQ(ta, tb);
}

TEST(ServeSession, SnapshotRestoreReplaysTail) {
  Session session(serve::parse_scenario("tiny"), 7);
  session.inject(2, 1, 42);
  session.inject(9, 3, 17);
  (void)run_session(session, 5);  // advance to tick 5 (stimulus@9 pending)
  EXPECT_GT(session.snapshot_save(), 0u);
  const std::vector<Triple> tail1 = run_session(session, 10);
  session.snapshot_restore();
  EXPECT_EQ(session.now(), 5u);
  const std::vector<Triple> tail2 = run_session(session, 10);
  EXPECT_EQ(tail1, tail2);
  EXPECT_FALSE(tail1.empty());
}

TEST(ServeSession, RestoreWithoutSaveIsTyped) {
  Session session(serve::parse_scenario("tiny"), 7);
  try {
    session.snapshot_restore();
    FAIL();
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), Errc::kSnapshotMissing);
  }
}

// --- served vs local byte-identity ------------------------------------------

struct Stimulus {
  std::uint64_t tick;
  std::uint32_t core;
  std::uint16_t axon;
};

std::vector<Stimulus> fixed_script() {
  std::vector<Stimulus> out;
  for (std::uint64_t t = 0; t < 20; t += 2) {
    out.push_back({t, static_cast<std::uint32_t>((3 * t) % 7),
                   static_cast<std::uint16_t>((31 * t + 5) % 256)});
  }
  return out;
}

/// The one-shot "CLI-style" reference run: same compiler entry points, no
/// serve code. Returns the per-tick spike batches.
std::vector<std::vector<SpikeEvent>> local_reference_run(
    std::uint64_t seed, std::uint64_t ticks,
    const std::vector<Stimulus>& script) {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  mopt.seed = seed;
  compiler::PccOptions popt;
  popt.ranks = 1;
  popt.threads_per_rank = 1;
  compiler::PccResult pcc =
      compiler::compile(cocomac::build_macaque_spec(mopt), popt);
  comm::MpiTransport transport(pcc.partition.ranks(), comm::CommCostModel{});
  runtime::Config cfg;
  cfg.measure = false;
  cfg.parallel_execution = false;
  runtime::Compass sim(pcc.model, pcc.partition, transport, cfg);
  std::vector<std::vector<SpikeEvent>> per_tick(ticks);
  std::vector<SpikeEvent>* current = nullptr;
  sim.set_spike_hook([&](arch::Tick, arch::CoreId core, unsigned neuron) {
    current->push_back({static_cast<std::uint32_t>(core),
                        static_cast<std::uint16_t>(neuron)});
  });
  for (std::uint64_t t = 0; t < ticks; ++t) {
    for (const Stimulus& s : script) {
      if (s.tick == t) {
        pcc.model.core(s.core).deliver(
            s.axon, static_cast<unsigned>(t & (arch::kDelaySlots - 1)));
      }
    }
    current = &per_tick[t];
    sim.step();
  }
  return per_tick;
}

/// Serialize per-tick batches exactly as the daemon frames them, so the
/// comparison below is over wire payload bytes.
std::vector<std::uint8_t> as_spike_payloads(
    std::uint32_t sid, std::uint64_t first_tick,
    const std::vector<std::vector<SpikeEvent>>& per_tick) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i < per_tick.size(); ++i) {
    std::vector<std::uint8_t> p = serve::payload(Op::kSpikes);
    serve::put_u32(p, sid);
    serve::put_u64(p, first_tick + i);
    serve::put_u32(p, static_cast<std::uint32_t>(per_tick[i].size()));
    for (const SpikeEvent& s : per_tick[i]) {
      serve::put_u32(p, s.core);
      serve::put_u16(p, s.neuron);
    }
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

TEST(ServeDaemon, ServedStreamIsByteIdenticalToLocalRun) {
  constexpr std::uint64_t kSeed = 2012;
  constexpr std::uint64_t kTicks = 24;
  const std::vector<Stimulus> script = fixed_script();
  const std::vector<std::vector<SpikeEvent>> expected =
      local_reference_run(kSeed, kTicks, script);

  ServerHarness harness;
  Client client;
  client.connect("127.0.0.1", harness.port());
  const std::uint32_t sid = client.create_session("tiny", kSeed);
  client.subscribe(sid, Stream::kSpikes);
  for (const Stimulus& s : script) {
    EXPECT_EQ(client.inject(sid, s.tick, s.core, s.axon), s.tick);
  }
  client.step(sid, kTicks);
  ASSERT_TRUE(client.wait_stepped(sid, kTicks));

  std::vector<std::vector<SpikeEvent>> served(kTicks);
  std::size_t frames = 0;
  while (auto f = client.take_spikes()) {
    ASSERT_EQ(f->session, sid);
    ASSERT_LT(f->tick, kTicks);
    for (const auto& [core, neuron] : f->spikes) {
      served[f->tick].push_back({core, neuron});
    }
    ++frames;
  }
  EXPECT_EQ(frames, kTicks) << "one spike frame per tick, empty included";

  std::uint64_t total = 0;
  for (const auto& batch : expected) total += batch.size();
  EXPECT_GT(total, 0u) << "reference run must spike";
  EXPECT_EQ(as_spike_payloads(sid, 0, served),
            as_spike_payloads(sid, 0, expected));

  client.close_session(sid);
  harness.stop();
  EXPECT_EQ(harness.server->stats().protocol_errors, 0u);
}

TEST(ServeAnalytics, ServedFramesAreByteIdenticalToLocalEngine) {
  // The analytics half of the served-vs-local contract: a subscriber's
  // kAnalytics lines must be the exact bytes a local engine emits over the
  // same scenario — config header included. The local side mirrors the CLI
  // wiring (compile, region map from pcc.regions, engine attached to a
  // serial measure=false run) and touches none of src/serve/.
  constexpr std::uint64_t kSeed = 2012;
  constexpr std::uint64_t kWindow = 16;
  constexpr std::uint64_t kTicks = 2 * kWindow;

  std::vector<std::string> local;
  {
    cocomac::MacaqueSpecOptions mopt;
    mopt.total_cores = 77;
    mopt.seed = kSeed;
    compiler::PccOptions popt;
    popt.ranks = 1;
    popt.threads_per_rank = 1;
    compiler::PccResult pcc =
        compiler::compile(cocomac::build_macaque_spec(mopt), popt);
    std::vector<std::uint32_t> core_region(pcc.model.num_cores(), 0);
    for (std::size_t g = 0; g < pcc.regions.size(); ++g) {
      const compiler::RegionInfo& r = pcc.regions[g];
      for (std::int64_t c = 0; c < r.cores; ++c) {
        core_region[static_cast<std::size_t>(r.first_core) +
                    static_cast<std::size_t>(c)] =
            static_cast<std::uint32_t>(g);
      }
    }
    comm::MpiTransport transport(pcc.partition.ranks(), comm::CommCostModel{});
    runtime::Config cfg;
    cfg.measure = false;
    cfg.parallel_execution = false;
    runtime::Compass sim(pcc.model, pcc.partition, transport, cfg);
    obs::AnalyticsOptions aopt;
    aopt.window_ticks = kWindow;
    obs::AnalyticsEngine engine(
        pcc.partition.ranks(),
        static_cast<std::uint32_t>(pcc.model.num_cores()),
        std::move(core_region), aopt);
    obs::TraceBuffer buf;
    engine.add_sink(&buf);
    sim.set_analytics(&engine);
    sim.run(kTicks);  // kTicks is a whole number of windows: nothing partial
    for (const auto& rec : buf.analytics()) local.push_back(rec.json);
  }
  ASSERT_EQ(local.size(), 3u);  // header + two windows

  serve::ServerOptions opts;
  opts.analytics_window_ticks = kWindow;
  ServerHarness harness(opts);
  Client client;
  client.connect("127.0.0.1", harness.port());
  const std::uint32_t sid = client.create_session("tiny", kSeed);
  client.subscribe(sid, Stream::kAnalytics);
  client.step(sid, kTicks);
  ASSERT_TRUE(client.wait_stepped(sid, kTicks));

  std::vector<std::string> served;
  while (auto f = client.take_analytics()) {
    ASSERT_EQ(f->session, sid);
    served.push_back(std::move(f->line));
  }
  EXPECT_EQ(served, local);

  client.close_session(sid);
  harness.stop();
  EXPECT_EQ(harness.server->stats().analytics_records, served.size());
  EXPECT_EQ(harness.server->stats().protocol_errors, 0u);
}

TEST(ServeAnalytics, SubscribeIsTypedErrorWhenDisabled) {
  serve::ServerOptions opts;
  opts.analytics_window_ticks = 0;  // daemon started with --analytics-window 0
  ServerHarness harness(opts);
  Client client;
  client.connect("127.0.0.1", harness.port());
  const std::uint32_t sid = client.create_session("tiny", 7);
  EXPECT_THROW(client.subscribe(sid, Stream::kAnalytics), std::runtime_error);
  client.close_session(sid);
  harness.stop();
}

// --- daemon lifecycle over loopback -----------------------------------------

TEST(ServeDaemon, SessionLimitAndBadScenarioAreTyped) {
  serve::ServerOptions opts;
  opts.max_sessions = 1;
  ServerHarness harness(opts);
  Client client;
  client.connect("127.0.0.1", harness.port());
  EXPECT_THROW(client.create_session("nope", 1), std::runtime_error);
  const std::uint32_t sid = client.create_session("tiny", 1);
  try {
    client.create_session("tiny", 2);
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("session-limit"), std::string::npos);
  }
  // The connection survived both rejections.
  client.close_session(sid);
  EXPECT_EQ(client.create_session("tiny", 3), sid + 1);
}

TEST(ServeDaemon, SnapshotRestoreOverProtocolReplaysTail) {
  ServerHarness harness;
  Client client;
  client.connect("127.0.0.1", harness.port());
  const std::uint32_t sid = client.create_session("tiny", 41);
  client.subscribe(sid, Stream::kSpikes);
  client.inject(sid, 3, 2, 77);
  client.inject(sid, 12, 5, 130);
  client.step(sid, 8);
  ASSERT_TRUE(client.wait_stepped(sid, 8));
  while (client.take_spikes()) {
  }
  EXPECT_GT(client.snapshot(sid, 0), 0u);  // save at tick 8

  client.step(sid, 8);
  ASSERT_TRUE(client.wait_stepped(sid, 16));
  std::vector<std::vector<SpikeEvent>> tail1(16);
  while (auto f = client.take_spikes()) {
    for (const auto& [core, neuron] : f->spikes) {
      tail1[f->tick].push_back({core, neuron});
    }
  }

  client.snapshot(sid, 1);  // restore to tick 8
  client.step(sid, 8);
  ASSERT_TRUE(client.wait_stepped(sid, 16));
  std::vector<std::vector<SpikeEvent>> tail2(16);
  while (auto f = client.take_spikes()) {
    for (const auto& [core, neuron] : f->spikes) {
      tail2[f->tick].push_back({core, neuron});
    }
  }
  EXPECT_EQ(as_spike_payloads(sid, 8, tail1), as_spike_payloads(sid, 8, tail2));
  client.close_session(sid);
}

TEST(ServeDaemon, HeartbeatsAndRatesStream) {
  serve::ServerOptions opts;
  opts.heartbeat_every_ticks = 8;
  opts.rate_window_ticks = 4;
  ServerHarness harness(opts);
  Client client;
  client.connect("127.0.0.1", harness.port());
  const std::uint32_t sid = client.create_session("tiny", 5);
  client.subscribe(sid, Stream::kRates);
  client.subscribe(sid, Stream::kHeartbeat);
  client.step(sid, 32);
  ASSERT_TRUE(client.wait_stepped(sid, 32));
  // Heartbeats are queued after the kStepped notification (they summarize
  // the whole stepping pass) — keep pumping until the stream goes quiet.
  try {
    while (client.pump(0.5)) {
    }
  } catch (const std::runtime_error&) {
  }
  std::uint64_t rate_ticks = 0;
  while (auto r = client.take_rates()) {
    EXPECT_EQ(r->session, sid);
    rate_ticks += r->ticks;
  }
  EXPECT_EQ(rate_ticks, 32u);  // 4-tick windows tile the whole run
  bool heartbeat_seen = false;
  while (auto h = client.take_heartbeat()) {
    heartbeat_seen = true;
    EXPECT_GE(h->total_ticks, 8u);
    EXPECT_EQ(h->sessions_open, 1u);
  }
  EXPECT_TRUE(heartbeat_seen);
  client.close_session(sid);
}

TEST(ServeDaemon, SessionLifecycleLandsInTraceSink) {
  obs::TraceBuffer trace;
  serve::ServerOptions opts;
  opts.trace = &trace;
  {
    ServerHarness harness(opts);
    Client client;
    client.connect("127.0.0.1", harness.port());
    const std::uint32_t sid = client.create_session("tiny", 1);
    client.step(sid, 2);
    ASSERT_TRUE(client.wait_stepped(sid, 2));
    client.snapshot(sid, 0);
    client.snapshot(sid, 1);
    client.close_session(sid);
    harness.stop();  // join before reading the buffer
  }
  std::vector<std::string> events;
  for (const auto& s : trace.sessions()) events.push_back(s.event);
  EXPECT_EQ(events, (std::vector<std::string>{"create", "snapshot", "restore",
                                              "close"}));
  EXPECT_EQ(trace.sessions().front().scenario, "macaque:77:1:1");
}

// Plain HTTP/1.0 GET over a raw blocking socket (Client would misparse the
// HTTP response as frames). Returns everything read until the daemon closes.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 10000);
    EXPECT_GT(ready, 0) << "HTTP response timed out";
    if (ready <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // daemon closes after the body
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(ServeDaemon, MetricsEndpointServesPrometheus) {
  obs::MetricsRegistry metrics;
  serve::ServerOptions opts;
  opts.metrics = &metrics;
  ServerHarness harness(opts);

  {  // some traffic first, so counters are non-trivial
    Client client;
    client.connect("127.0.0.1", harness.port());
    const std::uint32_t sid = client.create_session("tiny", 1);
    client.step(sid, 4);
    ASSERT_TRUE(client.wait_stepped(sid, 4));
    client.close_session(sid);
  }

  const std::string response = http_get(harness.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("serve_frames_total"), std::string::npos);
  EXPECT_NE(response.find("serve_ticks_stepped_total"), std::string::npos);
  EXPECT_NE(response.find("serve_sessions_open"), std::string::npos);

  const std::string missing = http_get(harness.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  harness.stop();
  EXPECT_EQ(harness.server->stats().http_requests, 2u);
  EXPECT_EQ(harness.server->stats().protocol_errors, 0u);
}

// --- backpressure ------------------------------------------------------------
//
// Both drills shrink the kernel socket buffers (daemon SO_SNDBUF + subscriber
// SO_RCVBUF) so the daemon's userspace send queue — the level the policy
// watches — saturates after a few hundred unread ticks, deterministically.

TEST(ServeBackpressure, SlowSubscriberCoalescesThenResumesWithFullCoverage) {
  serve::ServerOptions opts;
  opts.client_queue_soft_bytes = 4096;
  opts.stall_ticks = std::uint64_t{1} << 40;  // never disconnect in this test
  opts.so_sndbuf_bytes = 4096;
  ServerHarness harness(opts);

  Client driver;
  driver.connect("127.0.0.1", harness.port());
  const std::uint32_t sid = driver.create_session("tiny", 3);

  Client subscriber;
  subscriber.connect("127.0.0.1", harness.port(), /*rcvbuf_bytes=*/4096);
  subscriber.subscribe(sid, Stream::kSpikes);

  // Phase 1: step far past what the shrunken socket buffers can absorb while
  // the subscriber reads nothing — the daemon must coalesce, not OOM or stall.
  constexpr std::uint64_t kPhase1 = 4000;
  driver.step(sid, kPhase1);
  ASSERT_TRUE(driver.wait_stepped(sid, kPhase1));

  // Phase 2: the subscriber drains everything queued so far, then blocks.
  std::vector<int> covered(8192, 0);
  std::uint64_t rate_frames = 0;
  const auto absorb = [&](double timeout_s) {
    try {
      while (subscriber.pump(timeout_s)) {
        while (auto f = subscriber.take_spikes()) {
          ASSERT_LT(f->tick, covered.size());
          ++covered[f->tick];
        }
        while (auto r = subscriber.take_rates()) {
          ++rate_frames;
          for (std::uint64_t t = r->first_tick;
               t < r->first_tick + r->ticks; ++t) {
            ASSERT_LT(t, covered.size());
            ++covered[t];
          }
        }
      }
    } catch (const std::runtime_error&) {
      // pump timeout: queue drained, no more traffic for now
    }
  };
  absorb(2.0);

  // Phase 3: more stepping. With the queue drained the daemon must emit the
  // coalesced-gap kRates summary (resume) and go back to per-tick frames.
  constexpr std::uint64_t kPhase2 = 512;
  driver.step(sid, kPhase2);
  ASSERT_TRUE(driver.wait_stepped(sid, kPhase1 + kPhase2));
  absorb(2.0);

  EXPECT_GE(rate_frames, 1u) << "coalescing never engaged";
  for (std::uint64_t t = 0; t < kPhase1 + kPhase2; ++t) {
    EXPECT_EQ(covered[t], 1) << "tick " << t
                             << " must be reported exactly once";
  }
  EXPECT_TRUE(subscriber.connected());

  driver.close_session(sid);
  harness.stop();
  EXPECT_EQ(harness.server->stats().slow_disconnects, 0u);
  EXPECT_EQ(harness.server->stats().protocol_errors, 0u);
}

TEST(ServeBackpressure, StalledSubscriberIsDisconnectedTyped) {
  serve::ServerOptions opts;
  opts.client_queue_soft_bytes = 2048;
  opts.stall_ticks = 64;
  opts.so_sndbuf_bytes = 4096;
  ServerHarness harness(opts);

  Client driver;
  driver.connect("127.0.0.1", harness.port());
  const std::uint32_t sid = driver.create_session("tiny", 3);

  Client subscriber;
  subscriber.connect("127.0.0.1", harness.port(), /*rcvbuf_bytes=*/4096);
  subscriber.subscribe(sid, Stream::kSpikes);

  constexpr std::uint64_t kTicks = 4000;
  driver.step(sid, kTicks);
  ASSERT_TRUE(driver.wait_stepped(sid, kTicks));

  // The subscriber was never pumped: the daemon must have cut it loose. Read
  // until EOF (the kSlowConsumer error frame is best-effort — its queue was
  // saturated by definition — so only the disconnect itself is asserted).
  bool eof = false;
  try {
    for (int i = 0; i < 100000 && !eof; ++i) {
      eof = !subscriber.pump(5.0);
      while (subscriber.take_spikes()) {
      }
      while (subscriber.take_error()) {
      }
    }
  } catch (const std::runtime_error&) {
    FAIL() << "subscriber socket should reach EOF, not time out";
  }
  EXPECT_TRUE(eof);

  // The driver's connection is unaffected.
  EXPECT_EQ(driver.inject(sid, serve::kImmediateTick, 0, 1), kTicks);
  driver.close_session(sid);
  harness.stop();
  EXPECT_GE(harness.server->stats().slow_disconnects, 1u);
  EXPECT_EQ(harness.server->stats().protocol_errors, 0u);
}

}  // namespace
}  // namespace compass
