// Unit tests for the realizability machinery: IPFP / Sinkhorn–Knopp
// balancing, largest-remainder apportionment, and controlled integer
// rounding with exact margins.
#include "compiler/ipfp.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/prng.h"

namespace compass::compiler {
namespace {

util::Matrix<double> random_positive(std::size_t n, std::uint64_t seed) {
  util::CorePrng prng(seed);
  util::Matrix<double> m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m(r, c) = 0.1 + prng.uniform_double();
    }
  }
  return m;
}

TEST(SinkhornKnopp, DoublyStochasticOnPositiveMatrix) {
  util::Matrix<double> m = random_positive(10, 1);
  const IpfpResult res = sinkhorn_knopp(m);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(m.row_sum(i), 1.0, 1e-8);
    EXPECT_NEAR(m.col_sum(i), 1.0, 1e-8);
  }
}

TEST(SinkhornKnopp, RequiresSquareMatrix) {
  util::Matrix<double> m(2, 3, 1.0);
  EXPECT_THROW(sinkhorn_knopp(m), std::invalid_argument);
}

TEST(IpfpBalance, HitsArbitraryMargins) {
  util::Matrix<double> m = random_positive(6, 2);
  const std::vector<double> rows = {10, 20, 30, 40, 50, 60};
  const std::vector<double> cols = {60, 50, 40, 30, 20, 10};
  const IpfpResult res = ipfp_balance(m, rows, cols);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(m.row_sum(i), rows[i], 1e-6);
    EXPECT_NEAR(m.col_sum(i), cols[i], 1e-6);
  }
}

TEST(IpfpBalance, PreservesZeroSupport) {
  util::Matrix<double> m(3, 3, 1.0);
  m(0, 2) = 0.0;
  const std::vector<double> margins = {3, 3, 3};
  ipfp_balance(m, margins, margins);
  EXPECT_DOUBLE_EQ(m(0, 2), 0.0);
}

TEST(IpfpBalance, ZeroTargetRowIsCleared) {
  util::Matrix<double> m(3, 3, 1.0);
  const std::vector<double> rows = {0, 4, 5};
  const std::vector<double> cols = {3, 3, 3};
  ipfp_balance(m, rows, cols);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(0, c), 0.0);
}

TEST(IpfpBalance, SizeMismatchThrows) {
  util::Matrix<double> m(3, 3, 1.0);
  EXPECT_THROW(ipfp_balance(m, {1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(IpfpBalance, ReportsIterationsAndError) {
  util::Matrix<double> m = random_positive(4, 3);
  IpfpOptions opt;
  opt.max_iterations = 2;
  opt.tolerance = 0.0;  // unreachable: must stop at the iteration cap
  const IpfpResult res = ipfp_balance(m, {1, 1, 1, 1}, {1, 1, 1, 1}, opt);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 2);
  EXPECT_GT(res.max_relative_error, 0.0);
}

TEST(Apportion, ExactTotalAndProportionality) {
  const auto out = apportion({1.0, 2.0, 3.0, 4.0}, 100);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::int64_t{0}), 100);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 20);
  EXPECT_EQ(out[2], 30);
  EXPECT_EQ(out[3], 40);
}

TEST(Apportion, LargestRemainderRounding) {
  // 1/3 split of 10: shares 3.33 each -> 4,3,3 in deterministic order.
  const auto out = apportion({1.0, 1.0, 1.0}, 10);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::int64_t{0}), 10);
  for (std::int64_t v : out) EXPECT_GE(v, 3);
}

TEST(Apportion, MinimumGuarantee) {
  // Tiny weight still gets its floor of 1 (every brain region gets a core).
  const auto out = apportion({1e-9, 1.0, 1.0}, 10, /*minimum=*/1);
  EXPECT_GE(out[0], 1);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::int64_t{0}), 10);
}

TEST(Apportion, AllZeroWeightsSpreadEvenly) {
  const auto out = apportion({0.0, 0.0, 0.0, 0.0}, 7, 0);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::int64_t{0}), 7);
  for (std::int64_t v : out) EXPECT_LE(v, 2);
}

TEST(Apportion, TotalBelowMinimumThrows) {
  EXPECT_THROW(apportion({1.0, 1.0}, 1, 1), std::invalid_argument);
}

TEST(Apportion, NegativeWeightThrows) {
  EXPECT_THROW(apportion({1.0, -1.0}, 10), std::invalid_argument);
}

TEST(Apportion, Deterministic) {
  const auto a = apportion({0.3, 0.3, 0.4}, 11);
  const auto b = apportion({0.3, 0.3, 0.4}, 11);
  EXPECT_EQ(a, b);
}

TEST(ControlledRound, ExactMarginsOnBalancedMatrix) {
  util::Matrix<double> m = random_positive(8, 5);
  std::vector<double> margins_d(8, 100.0);
  ipfp_balance(m, margins_d, margins_d);
  const std::vector<std::int64_t> margins(8, 100);
  const auto k = controlled_round(m, margins, margins);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(k.row_sum(i), 100);
    EXPECT_EQ(k.col_sum(i), 100);
  }
}

TEST(ControlledRound, UnequalMargins) {
  util::Matrix<double> m = random_positive(4, 7);
  const std::vector<std::int64_t> rows = {10, 20, 30, 40};
  const std::vector<std::int64_t> cols = {40, 30, 20, 10};
  std::vector<double> rd(rows.begin(), rows.end()), cd(cols.begin(), cols.end());
  ipfp_balance(m, rd, cd);
  const auto k = controlled_round(m, rows, cols);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(k.row_sum(i), rows[i]);
    EXPECT_EQ(k.col_sum(i), cols[i]);
  }
}

TEST(ControlledRound, ValuesStayNearReals) {
  util::Matrix<double> m = random_positive(6, 9);
  std::vector<double> md(6, 60.0);
  ipfp_balance(m, md, md);
  const std::vector<std::int64_t> margins(6, 60);
  const auto k = controlled_round(m, margins, margins);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(static_cast<double>(k(r, c)), m(r, c), 3.0);
    }
  }
}

TEST(ControlledRound, MismatchedTotalsThrow) {
  util::Matrix<double> m(2, 2, 1.0);
  EXPECT_THROW(controlled_round(m, {1, 1}, {1, 2}), std::invalid_argument);
}

TEST(ControlledRound, IntegerInputPassesThrough) {
  util::Matrix<double> m(2, 2, 0.0);
  m(0, 0) = 3;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 3;
  const auto k = controlled_round(m, {4, 4}, {4, 4});
  EXPECT_EQ(k(0, 0), 3);
  EXPECT_EQ(k(0, 1), 1);
  EXPECT_EQ(k(1, 0), 1);
  EXPECT_EQ(k(1, 1), 3);
}

// Property sweep: IPFP + controlled rounding always yields exact integer
// margins for random matrices of varying size.
class RoundingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RoundingSweep, ExactMarginsAlways) {
  const int n = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    util::Matrix<double> m = random_positive(static_cast<std::size_t>(n), seed);
    util::CorePrng prng(seed + 100);
    std::vector<std::int64_t> margins(static_cast<std::size_t>(n));
    std::int64_t total_rows = 0;
    for (auto& v : margins) {
      v = 1 + prng.uniform_below(50);
      total_rows += v;
    }
    std::vector<double> md(margins.begin(), margins.end());
    ipfp_balance(m, md, md);
    const auto k = controlled_round(m, margins, margins);
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      ASSERT_EQ(k.row_sum(i), margins[i]) << "n=" << n << " seed=" << seed;
      ASSERT_EQ(k.col_sum(i), margins[i]) << "n=" << n << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoundingSweep, ::testing::Values(2, 3, 5, 13, 40));

}  // namespace
}  // namespace compass::compiler
