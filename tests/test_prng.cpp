// Unit tests for the deterministic PRNGs (util/prng.h). These generators
// stand in for TrueNorth's hardware PRNGs, so bit-exact reproducibility is a
// correctness property, not just a convenience.
#include "util/prng.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>
#include <vector>

namespace compass::util {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(DeriveSeed, DistinctStreamsGetDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 10000; ++stream) {
    seeds.insert(derive_seed(42, stream));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(DeriveSeed, AdjacentStreamsDecorrelated) {
  // Hamming distance between adjacent streams' seeds should hover near 32.
  int total_bits = 0;
  for (std::uint64_t s = 0; s < 100; ++s) {
    total_bits += std::popcount(derive_seed(7, s) ^ derive_seed(7, s + 1));
  }
  EXPECT_GT(total_bits, 2400);  // mean 32 +- a wide margin
  EXPECT_LT(total_bits, 4000);
}

TEST(CorePrng, Deterministic) {
  CorePrng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(CorePrng, ZeroSeedIsLegal) {
  CorePrng prng(0);
  EXPECT_NE(prng.next_u64(), 0u);
  // State must never become zero (xorshift degenerate fixed point).
  for (int i = 0; i < 10000; ++i) {
    prng.next_u64();
    EXPECT_NE(prng.state(), 0u);
  }
}

TEST(CorePrng, ReseedRestartsSequence) {
  CorePrng prng(5);
  const std::uint64_t first = prng.next_u64();
  prng.next_u64();
  prng.reseed(5);
  EXPECT_EQ(prng.next_u64(), first);
}

TEST(CorePrng, SetStateRoundTrips) {
  CorePrng prng(17);
  prng.next_u64();
  const std::uint64_t saved = prng.state();
  const std::uint64_t expect = CorePrng(prng).next_u64();
  CorePrng restored(1234);
  restored.set_state(saved);
  EXPECT_EQ(restored.next_u64(), expect);
}

TEST(CorePrng, Bernoulli8MatchesProbability) {
  CorePrng prng(7);
  for (int p8 : {0, 32, 128, 200, 255}) {
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      if (prng.bernoulli_8(static_cast<std::uint8_t>(p8))) ++hits;
    }
    const double expected = n * p8 / 256.0;
    EXPECT_NEAR(hits, expected, 4.5 * std::sqrt(n * (p8 / 256.0) * (1 - p8 / 256.0)) + 1)
        << "p8=" << p8;
  }
}

TEST(CorePrng, Bernoulli8ZeroNeverFires) {
  CorePrng prng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(prng.bernoulli_8(0));
}

TEST(CorePrng, UniformMaskedStaysInRange) {
  CorePrng prng(11);
  for (std::uint32_t bits = 0; bits <= 16; ++bits) {
    const std::uint32_t mask = (1u << bits) - 1;
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LE(prng.uniform_masked(mask), mask);
    }
  }
}

TEST(CorePrng, UniformMaskedCoversRange) {
  CorePrng prng(13);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(prng.uniform_masked(15));
  EXPECT_EQ(seen.size(), 16u);
}

TEST(CorePrng, UniformBelowBounds) {
  CorePrng prng(21);
  for (std::uint32_t n : {1u, 2u, 3u, 10u, 77u, 1000u}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(prng.uniform_below(n), n);
    }
  }
}

TEST(CorePrng, UniformBelowIsRoughlyUniform) {
  CorePrng prng(31);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[prng.uniform_below(8)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, 600);
}

TEST(CorePrng, UniformDoubleInUnitInterval) {
  CorePrng prng(41);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = prng.uniform_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(CorePrng, ByteDistributionIsFlat) {
  CorePrng prng(51);
  std::vector<int> counts(256, 0);
  const int n = 256 * 2000;
  for (int i = 0; i < n; ++i) ++counts[prng.next_u8()];
  for (int c : counts) EXPECT_NEAR(c, 2000, 350);
}

}  // namespace
}  // namespace compass::util
