// Tests for the Parallel Compass Compiler: realizability, placement,
// wiring invariants, and determinism.
#include "compiler/pcc.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace compass::compiler {
namespace {

Spec small_spec(std::uint64_t cores = 24) {
  Spec spec = parse_coreobject_string(R"(
network test
seed 99
region A class cortical volume 100 self 0.4 rate 8
region B class thalamic volume 50 self 0.2 rate 10
region C class cortical volume unknown self 0.4 rate 8
edge A B 1
edge B A 2
edge A C 1
edge C A 1
edge B C 0.5
)");
  spec.total_cores = cores;
  return spec;
}

TEST(Pcc, RejectsInvalidSpec) {
  Spec spec;  // empty
  EXPECT_THROW(compile(spec), std::invalid_argument);
}

TEST(Pcc, RejectsBadOptions) {
  PccOptions opt;
  opt.ranks = 0;
  EXPECT_THROW(compile(small_spec(), opt), std::invalid_argument);
  opt.ranks = 1;
  opt.crossbar_density = 2.0;
  EXPECT_THROW(compile(small_spec(), opt), std::invalid_argument);
}

TEST(Pcc, CoreAllocationMatchesTotalsAndMinimum) {
  const PccResult r = compile(small_spec(24));
  std::int64_t total = 0;
  for (const RegionInfo& info : r.regions) {
    EXPECT_GE(info.cores, 1);
    total += info.cores;
  }
  EXPECT_EQ(total, 24);
  EXPECT_EQ(r.model.num_cores(), 24u);
  // A (vol 100) gets more cores than B (vol 50).
  EXPECT_GT(r.regions[0].cores, r.regions[1].cores);
}

TEST(Pcc, UnknownVolumeImputedWithClassMedian) {
  const PccResult r = compile(small_spec());
  EXPECT_FALSE(r.regions[0].volume_imputed);
  EXPECT_TRUE(r.regions[2].volume_imputed);
  // Only one known cortical volume -> median is exactly it.
  EXPECT_DOUBLE_EQ(r.regions[2].volume, 100.0);
}

TEST(Pcc, ConnectionMatrixHasExactMargins) {
  const PccResult r = compile(small_spec());
  for (std::size_t i = 0; i < r.regions.size(); ++i) {
    const std::int64_t neurons = r.regions[i].cores * 256;
    EXPECT_EQ(r.connections.row_sum(i), neurons) << r.regions[i].name;
    EXPECT_EQ(r.connections.col_sum(i), neurons) << r.regions[i].name;
  }
}

TEST(Pcc, ModelValidates) {
  const PccResult r = compile(small_spec());
  EXPECT_EQ(r.model.validate(), "");
}

TEST(Pcc, EveryNeuronHasExactlyOneTargetAndEveryAxonOneSource) {
  const PccResult r = compile(small_spec());
  std::vector<int> axon_in(r.model.num_cores() * 256, 0);
  for (arch::CoreId c = 0; c < r.model.num_cores(); ++c) {
    for (unsigned j = 0; j < 256; ++j) {
      const arch::AxonTarget t = r.model.core(c).target(j);
      ASSERT_TRUE(t.connected()) << "core " << c << " neuron " << j;
      ++axon_in[static_cast<std::size_t>(t.core) * 256 + t.axon];
    }
  }
  for (int uses : axon_in) EXPECT_EQ(uses, 1);
}

TEST(Pcc, RegionBlocksAreContiguousAndLabelled) {
  const PccResult r = compile(small_spec());
  for (std::size_t i = 0; i < r.regions.size(); ++i) {
    const RegionInfo& info = r.regions[i];
    for (std::int64_t c = 0; c < info.cores; ++c) {
      EXPECT_EQ(r.model.region(info.first_core + static_cast<arch::CoreId>(c)),
                static_cast<std::uint16_t>(i));
    }
  }
}

TEST(Pcc, GrayMatterStaysWithinRank) {
  PccOptions opt;
  opt.ranks = 4;
  const PccResult r = compile(small_spec(32), opt);
  std::uint64_t gray = 0;
  for (arch::CoreId c = 0; c < r.model.num_cores(); ++c) {
    for (unsigned j = 0; j < 256; ++j) {
      const arch::AxonTarget t = r.model.core(c).target(j);
      // Gray-matter connection == same region.
      if (r.model.region(c) == r.model.region(t.core)) {
        EXPECT_EQ(r.partition.rank_of(c), r.partition.rank_of(t.core))
            << "gray-matter connection crossed a rank boundary";
        ++gray;
      }
    }
  }
  EXPECT_EQ(gray, r.stats.gray_connections);
}

TEST(Pcc, DelaysRespectConfiguredRanges) {
  PccOptions opt;
  opt.gray_delay_min = 1;
  opt.gray_delay_max = 2;
  opt.white_delay_min = 5;
  opt.white_delay_max = 9;
  const PccResult r = compile(small_spec(), opt);
  for (arch::CoreId c = 0; c < r.model.num_cores(); ++c) {
    for (unsigned j = 0; j < 256; ++j) {
      const arch::AxonTarget t = r.model.core(c).target(j);
      const bool gray = r.model.region(c) == r.model.region(t.core);
      if (gray) {
        EXPECT_GE(t.delay, 1);
        EXPECT_LE(t.delay, 2);
      } else {
        EXPECT_GE(t.delay, 5);
        EXPECT_LE(t.delay, 9);
      }
    }
  }
}

TEST(Pcc, AxonTypesEncodeSourceIdentityAndLocality) {
  const PccResult r = compile(small_spec());
  for (arch::CoreId c = 0; c < r.model.num_cores(); ++c) {
    for (unsigned j = 0; j < 256; ++j) {
      const arch::AxonTarget t = r.model.core(c).target(j);
      const bool gray = r.model.region(c) == r.model.region(t.core);
      const bool inh = is_inhibitory_neuron(j, 0.8);
      const std::uint8_t expect =
          gray ? (inh ? 3 : 2) : (inh ? 1 : 0);
      EXPECT_EQ(r.model.core(t.core).axon_type(t.axon), expect);
    }
  }
}

TEST(Pcc, CrossbarDensityNearConfigured) {
  PccOptions opt;
  opt.crossbar_density = 0.25;
  const PccResult r = compile(small_spec(), opt);
  const arch::ModelInventory inv = r.model.inventory();
  const double density = static_cast<double>(inv.synapses) /
                         (static_cast<double>(inv.cores) * 65536.0);
  EXPECT_NEAR(density, 0.25, 0.01);
}

TEST(Pcc, ArbitraryDensityFallbackWorks) {
  PccOptions opt;
  opt.crossbar_density = 0.1;
  const PccResult r = compile(small_spec(6), opt);
  const arch::ModelInventory inv = r.model.inventory();
  const double density = static_cast<double>(inv.synapses) /
                         (static_cast<double>(inv.cores) * 65536.0);
  EXPECT_NEAR(density, 0.1, 0.02);
}

TEST(Pcc, DeterministicAcrossCalls) {
  const PccResult a = compile(small_spec());
  const PccResult b = compile(small_spec());
  EXPECT_TRUE(a.model == b.model);
}

TEST(Pcc, RankCountDoesNotChangeWhiteMatterWiring) {
  // Gray matter is rank-chunked, so only it may differ; white matter totals
  // must match exactly.
  PccOptions one, four;
  one.ranks = 1;
  four.ranks = 4;
  const PccResult a = compile(small_spec(32), one);
  const PccResult b = compile(small_spec(32), four);
  EXPECT_EQ(a.stats.white_connections, b.stats.white_connections);
  EXPECT_EQ(a.stats.gray_connections, b.stats.gray_connections);
}

TEST(Pcc, WiringStatsAreConsistent) {
  const PccResult r = compile(small_spec());
  std::int64_t white = 0, gray = 0;
  for (std::size_t s = 0; s < r.regions.size(); ++s) {
    for (std::size_t t = 0; t < r.regions.size(); ++t) {
      (s == t ? gray : white) += r.connections(s, t);
    }
  }
  EXPECT_EQ(r.stats.white_connections, static_cast<std::uint64_t>(white));
  EXPECT_EQ(r.stats.gray_connections, static_cast<std::uint64_t>(gray));
  EXPECT_GT(r.stats.pcc_messages, 0u);
  EXPECT_EQ(r.stats.pcc_messages % 2, 0u);  // request + grant per pair
  EXPECT_GE(r.stats.compile_s, 0.0);
}

TEST(Pcc, PlacementKeepsRegionsOnFewRanks) {
  PccOptions opt;
  opt.ranks = 3;
  const PccResult r = compile(small_spec(30), opt);
  for (const RegionInfo& info : r.regions) {
    // Contiguous block: spans ceil(cores / capacity) + 1 ranks at most.
    EXPECT_LE(info.last_rank - info.first_rank,
              static_cast<int>(info.cores / (30 / 3)) + 1);
  }
}

TEST(Pcc, IsolatedRegionBecomesAllGrayMatter) {
  Spec spec = parse_coreobject_string(R"(
network iso
seed 5
cores 4
region X class generic volume 1 self 0.3 rate 5
)");
  const PccResult r = compile(spec);
  EXPECT_EQ(r.stats.white_connections, 0u);
  EXPECT_EQ(r.stats.gray_connections, 4u * 256u);
  EXPECT_EQ(r.model.validate(), "");
}

TEST(IsInhibitoryNeuron, FractionIsExact) {
  int inh = 0;
  for (unsigned j = 0; j < 256; ++j) {
    if (is_inhibitory_neuron(j, 0.8)) ++inh;
  }
  EXPECT_NEAR(inh, 51, 1);  // 20% of 256
  // Interleaved, not clustered: no run of 5 consecutive inhibitory neurons.
  int run = 0;
  for (unsigned j = 0; j < 256; ++j) {
    run = is_inhibitory_neuron(j, 0.8) ? run + 1 : 0;
    EXPECT_LT(run, 2);
  }
}

TEST(IsInhibitoryNeuron, ExtremeFractions) {
  for (unsigned j = 0; j < 256; ++j) {
    EXPECT_FALSE(is_inhibitory_neuron(j, 1.0));
    EXPECT_TRUE(is_inhibitory_neuron(j, 0.0));
  }
}

// --- Region kinds (functional-primitive regions, section IV) ---------------

Spec kinded_spec() {
  Spec spec = parse_coreobject_string(R"(
network kinds
seed 31
cores 12
region SRC class generic volume 1 self 0.1 rate 40 kind source
region MID class generic volume 1 self 0.1 rate 0 kind relay
region SINK class generic volume 1 self 0.2 rate 0
edge SRC MID 1
edge MID SINK 1
edge SINK SRC 0.2
)");
  return spec;
}

TEST(PccKinds, RoundTripThroughCoreObject) {
  const Spec a = kinded_spec();
  const Spec b = parse_coreobject_string(to_coreobject_string(a));
  ASSERT_EQ(b.regions.size(), 3u);
  EXPECT_EQ(b.regions[0].kind, RegionKind::kSource);
  EXPECT_EQ(b.regions[1].kind, RegionKind::kRelay);
  EXPECT_EQ(b.regions[2].kind, RegionKind::kBalanced);
}

TEST(PccKinds, SourceRegionIgnoresInput) {
  const PccResult r = compile(kinded_spec());
  EXPECT_EQ(r.regions[0].kind, RegionKind::kSource);
  const arch::CoreId first = r.regions[0].first_core;
  const arch::NeuronParams p = r.model.core(first).params_of(0);
  for (std::int16_t w : p.weights) EXPECT_EQ(w, 0);
  EXPECT_LT(p.leak, 0);  // drive present
}

TEST(PccKinds, RelayRegionHasSupraThresholdWeightsAndNoDrive) {
  const PccResult r = compile(kinded_spec());
  const arch::CoreId first = r.regions[1].first_core;
  const arch::NeuronParams p = r.model.core(first).params_of(0);
  EXPECT_EQ(p.weights[0], p.threshold);
  EXPECT_EQ(p.weights[1], 0);  // inhibitory inputs inert in a relay
  EXPECT_EQ(p.leak, 0);
  EXPECT_EQ(p.flags, 0);
}

TEST(PccKinds, UnknownKindFailsToParse) {
  EXPECT_THROW(
      parse_coreobject_string(
          "region X class generic volume 1 self 0 rate 1 kind bogus\n"),
      std::runtime_error);
}

// Sweep: realizability holds for many (regions, cores, ranks) shapes.
class PccShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PccShapeSweep, CompilesAndValidates) {
  const auto [cores, ranks] = GetParam();
  PccOptions opt;
  opt.ranks = ranks;
  const PccResult r = compile(small_spec(static_cast<std::uint64_t>(cores)), opt);
  EXPECT_EQ(r.model.validate(), "");
  EXPECT_EQ(r.model.num_cores(), static_cast<std::size_t>(cores));
}

INSTANTIATE_TEST_SUITE_P(Shapes, PccShapeSweep,
                         ::testing::Combine(::testing::Values(3, 8, 24, 64),
                                            ::testing::Values(1, 2, 5)));

}  // namespace
}  // namespace compass::compiler
