// Rank-failure recovery lockdown suite (`ctest -L resilience-recovery`).
//
// Covers the survivable-simulation contract end to end:
//   * policy parsing and the kill-rank/kill-tick pairing rule in FaultPlan;
//   * checkpoint selection (newest at-or-before the failure tick — a
//     snapshot written after the death holds ghost state a real cluster
//     could never have collected);
//   * the orphan re-placement planner (traffic-aware, load-capped,
//     deterministic);
//   * the supervisor itself: a killed rank is survived under both
//     restart-rank and migrate, the run completes every tick, and the
//     recovery is visible in the RunReport, JSONL traces, metrics, and
//     flight recorder;
//   * determinism: same seed + same plan ⇒ byte-identical post-recovery
//     model state across MPI/PGAS transports and OpenMP widths;
//   * abort: arming the supervisor with the abort policy is bit-for-bit a
//     no-op;
//   * chaos soak: randomized plans × degradation policies × recovery modes
//     either complete or fail with a typed error — never UB, never a hang.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "comm/pgas_transport.h"
#include "compiler/pcc.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "place/placer.h"
#include "resilience/checkpoint.h"
#include "resilience/checkpoint_manager.h"
#include "resilience/fault.h"
#include "resilience/recovery.h"
#include "runtime/compass.h"

namespace compass {
namespace {

namespace fs = std::filesystem;

using arch::CoreId;
using arch::Tick;
using resilience::CheckpointError;
using resilience::CheckpointManager;
using resilience::CheckpointOptions;
using resilience::FaultPlan;
using resilience::FaultPlanError;
using resilience::RecoveryError;
using resilience::RecoveryOptions;
using resilience::RecoveryPolicy;
using resilience::RecoverySupervisor;
using SpikeEvent = std::tuple<Tick, CoreId, unsigned>;

/// The frozen seed-2012 network the other lockdown suites also use.
compiler::PccResult build_fixed_model(int ranks = 3, int threads = 2) {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  mopt.seed = 2012;
  compiler::PccOptions popt;
  popt.ranks = ranks;
  popt.threads_per_rank = threads;
  return compiler::compile(cocomac::build_macaque_spec(mopt), popt);
}

std::string unique_dir(const char* tag) {
  static int counter = 0;
  fs::path dir = fs::path(::testing::TempDir()) /
                 (std::string("compass_recovery_") + tag + "_" +
                  std::to_string(::getpid()) + "_" + std::to_string(counter++));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Deterministic model bytes (Model::save): the byte-identity currency for
/// the cross-transport / cross-width determinism claims. The full
/// checkpoint is not used for byte comparison because its runtime section
/// carries measured host wall time.
std::string model_bytes(const arch::Model& model) {
  std::ostringstream os(std::ios::binary);
  model.save(os);
  return os.str();
}

enum class TransportKind { kMpi, kPgas };

std::unique_ptr<comm::Transport> make_transport(TransportKind kind,
                                                int ranks) {
  if (kind == TransportKind::kPgas) {
    return std::make_unique<comm::PgasTransport>(ranks, comm::CommCostModel{});
  }
  return std::make_unique<comm::MpiTransport>(ranks, comm::CommCostModel{});
}

/// A full faulty-run fixture: model + fault decorator + simulator + the
/// supervisor wiring the CLI performs, so tests drive exactly the
/// production recovery path.
struct RecoveryRun {
  arch::Model model;
  runtime::Partition partition;
  std::unique_ptr<comm::Transport> inner;
  std::unique_ptr<resilience::FaultInjectingTransport> faulty;
  std::unique_ptr<runtime::Compass> sim;
  std::unique_ptr<CheckpointManager> manager;
  std::unique_ptr<RecoverySupervisor> supervisor;
  std::vector<SpikeEvent> spikes;
  std::ostringstream trace_os;
  std::unique_ptr<obs::JsonlTraceWriter> trace;

  RecoveryRun(const compiler::PccResult& pcc, const FaultPlan& plan,
              RecoveryPolicy policy, const std::string& ckpt_dir,
              std::uint64_t ckpt_every, TransportKind kind = TransportKind::kMpi)
      : model(pcc.model), partition(pcc.partition) {
    inner = make_transport(kind, partition.ranks());
    faulty =
        std::make_unique<resilience::FaultInjectingTransport>(*inner, plan);
    runtime::Config cfg;
    cfg.measure = false;  // modelled times only: runs compare byte-for-byte
    sim = std::make_unique<runtime::Compass>(model, partition, *faulty, cfg);
    sim->set_spike_hook([this](Tick t, CoreId c, unsigned j) {
      spikes.emplace_back(t, c, j);
    });
    trace = std::make_unique<obs::JsonlTraceWriter>(
        trace_os, obs::JsonlOptions{.include_measured = false});
    sim->add_trace_sink(trace.get());

    CheckpointOptions copt;
    copt.dir = ckpt_dir;
    copt.every = ckpt_every;
    copt.keep = 100;  // retention is not under test here
    manager = std::make_unique<CheckpointManager>(copt);
    manager->attach(*sim, model);

    RecoveryOptions ropt;
    ropt.policy = policy;
    supervisor = std::make_unique<RecoverySupervisor>(ropt, *sim, model,
                                                      *faulty, *manager);
  }
};

FaultPlan kill_plan(int rank, std::uint64_t tick) {
  return FaultPlan::parse("kill-rank=" + std::to_string(rank) +
                          ",kill-tick=" + std::to_string(tick));
}

// --- Policy parsing and the plan pairing rule -------------------------------

TEST(RecoveryPolicy, ParsesAndRoundTrips) {
  EXPECT_EQ(resilience::parse_recovery_policy("abort"), RecoveryPolicy::kAbort);
  EXPECT_EQ(resilience::parse_recovery_policy("restart-rank"),
            RecoveryPolicy::kRestartRank);
  EXPECT_EQ(resilience::parse_recovery_policy("migrate"),
            RecoveryPolicy::kMigrate);
  for (RecoveryPolicy p : {RecoveryPolicy::kAbort, RecoveryPolicy::kRestartRank,
                           RecoveryPolicy::kMigrate}) {
    EXPECT_EQ(resilience::parse_recovery_policy(resilience::to_string(p)), p);
  }
  EXPECT_THROW(resilience::parse_recovery_policy("reboot"), RecoveryError);
  EXPECT_THROW(resilience::parse_recovery_policy(""), RecoveryError);
}

TEST(FaultPlanKillPair, KillRankWithoutTickIsRejected) {
  EXPECT_THROW(FaultPlan::parse("kill-rank=1"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("drop=0.1,kill-rank=0"), FaultPlanError);
}

TEST(FaultPlanKillPair, KillTickWithoutRankIsRejected) {
  EXPECT_THROW(FaultPlan::parse("kill-tick=10"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("kill-tick=10,drop=0.1"), FaultPlanError);
}

TEST(FaultPlanKillPair, PairParsesAndEchoesBoth) {
  const FaultPlan plan = FaultPlan::parse("kill-rank=2,kill-tick=7");
  EXPECT_EQ(plan.kill_rank, 2);
  EXPECT_EQ(plan.kill_tick, 7u);
  const std::string echo = plan.to_string();
  EXPECT_NE(echo.find("kill-rank=2"), std::string::npos);
  EXPECT_NE(echo.find("kill-tick=7"), std::string::npos);
  // The echo round-trips — what a post-mortem reads is what ran.
  const FaultPlan again = FaultPlan::parse(echo);
  EXPECT_EQ(again.kill_rank, plan.kill_rank);
  EXPECT_EQ(again.kill_tick, plan.kill_tick);
}

// --- Checkpoint selection ---------------------------------------------------

TEST(LatestAtOrBefore, PicksNewestSnapshotNotAfterTheFailure) {
  const std::string dir = unique_dir("at_or_before");
  const compiler::PccResult pcc = build_fixed_model();
  RecoveryRun run(pcc, FaultPlan{}, RecoveryPolicy::kAbort, dir, 0);
  for (Tick t : {Tick{5}, Tick{10}, Tick{15}}) {
    resilience::Checkpoint cp = resilience::capture(*run.sim, run.model);
    cp.tick = t;
    resilience::save_checkpoint_file(cp, dir + "/" +
                                             CheckpointManager::file_name(t));
  }
  EXPECT_EQ(CheckpointManager::latest_at_or_before(dir, 12),
            dir + "/" + CheckpointManager::file_name(10));
  EXPECT_EQ(CheckpointManager::latest_at_or_before(dir, 10),
            dir + "/" + CheckpointManager::file_name(10));
  EXPECT_EQ(CheckpointManager::latest_at_or_before(dir, 99),
            dir + "/" + CheckpointManager::file_name(15));
  EXPECT_EQ(CheckpointManager::latest_at_or_before(dir, 4), "");
  fs::remove_all(dir);
}

TEST(CheckpointRetention, UnwritableDirIsTypedIoError) {
  const std::string dir = unique_dir("typed_io");
  const compiler::PccResult pcc = build_fixed_model();
  RecoveryRun run(pcc, FaultPlan{}, RecoveryPolicy::kAbort, dir, 0);
  EXPECT_FALSE(run.manager->write_now(*run.sim, run.model).empty());
  // Replace the directory with a plain file: both the write path and the
  // retention pass's dirfd fsync now have nothing valid to open.
  fs::remove_all(dir);
  { std::ofstream blocker(dir); }
  try {
    run.manager->write_now(*run.sim, run.model);
    FAIL() << "write_now into a non-directory must throw";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), resilience::CheckpointErrc::kIo);
  }
  fs::remove_all(dir);
}

TEST(CheckpointRetention, PruneKeepsNewestAndSurvivesDirectoryFsync) {
  const std::string dir = unique_dir("retention");
  const compiler::PccResult pcc = build_fixed_model();
  FaultPlan plan;  // fault-free
  RecoveryRun run(pcc, plan, RecoveryPolicy::kAbort, dir, 0);
  CheckpointOptions copt;
  copt.dir = dir;
  copt.every = 0;
  copt.keep = 2;
  CheckpointManager tight(copt);
  for (int i = 0; i < 4; ++i) {
    run.sim->run(3);
    ASSERT_FALSE(tight.write_now(*run.sim, run.model).empty());
  }
  int files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2);  // prune (with its dirfd fsync) ran after each write
  fs::remove_all(dir);
}

// --- Orphan re-placement planner --------------------------------------------

TEST(ReplaceDeadRank, MovesEveryOrphanToSurvivorsUnderLoadCap) {
  const compiler::PccResult pcc = build_fixed_model(4, 1);
  const std::vector<int> rank_of =
      place::replace_dead_rank(pcc.partition, 1, nullptr);
  ASSERT_EQ(rank_of.size(), pcc.partition.num_cores());
  const std::size_t cores = pcc.partition.num_cores();
  const std::size_t cap = (cores + 3 - 1) / 3;  // ceil(cores / survivors)
  std::vector<std::size_t> load(4, 0);
  for (std::size_t c = 0; c < cores; ++c) {
    EXPECT_NE(rank_of[c], 1) << "core " << c << " left on the dead rank";
    ++load[static_cast<std::size_t>(rank_of[c])];
  }
  EXPECT_EQ(load[1], 0u);
  for (int r : {0, 2, 3}) {
    EXPECT_LE(load[static_cast<std::size_t>(r)], cap) << "rank " << r;
  }
  // Survivors' own cores never move.
  for (int r : {0, 2, 3}) {
    for (CoreId c : pcc.partition.cores_of(r)) {
      EXPECT_EQ(rank_of[static_cast<std::size_t>(c)], r);
    }
  }
}

TEST(ReplaceDeadRank, PrefersTheRankThatTalkedMostToTheDeadOne) {
  const compiler::PccResult pcc = build_fixed_model(4, 1);
  obs::CommMatrix comm(4);
  // Rank 3 exchanged overwhelmingly more spikes with rank 1 than anyone.
  comm.record(1, 3, /*spikes=*/100000, /*bytes=*/1);
  comm.record(3, 1, /*spikes=*/100000, /*bytes=*/1);
  comm.record(1, 0, /*spikes=*/10, /*bytes=*/1);
  const std::vector<int> rank_of =
      place::replace_dead_rank(pcc.partition, 1, &comm);
  const std::size_t orphans = pcc.partition.cores_of(1).size();
  const std::size_t cores = pcc.partition.num_cores();
  const std::size_t cap = (cores + 2) / 3;
  const std::size_t rank3_room = cap - pcc.partition.cores_of(3).size();
  std::size_t moved_to_3 = 0;
  for (CoreId c : pcc.partition.cores_of(1)) {
    if (rank_of[static_cast<std::size_t>(c)] == 3) ++moved_to_3;
  }
  EXPECT_EQ(moved_to_3, std::min(orphans, rank3_room));
}

TEST(ReplaceDeadRank, IsDeterministic) {
  const compiler::PccResult pcc = build_fixed_model(4, 1);
  obs::CommMatrix comm(4);
  comm.record(1, 2, 500, 1);
  comm.record(0, 1, 500, 1);
  EXPECT_EQ(place::replace_dead_rank(pcc.partition, 1, &comm),
            place::replace_dead_rank(pcc.partition, 1, &comm));
  EXPECT_EQ(place::replace_dead_rank(pcc.partition, 1, nullptr),
            place::replace_dead_rank(pcc.partition, 1, nullptr));
}

TEST(ReplaceDeadRank, RejectsImpossibleInputs) {
  const compiler::PccResult pcc = build_fixed_model(3, 1);
  EXPECT_THROW(place::replace_dead_rank(pcc.partition, -1, nullptr),
               place::PlacementError);
  EXPECT_THROW(place::replace_dead_rank(pcc.partition, 3, nullptr),
               place::PlacementError);
  const compiler::PccResult solo = build_fixed_model(1, 1);
  EXPECT_THROW(place::replace_dead_rank(solo.partition, 0, nullptr),
               place::PlacementError);
}

// --- Surviving a kill: migrate ----------------------------------------------

TEST(RecoverySupervisor, MigrateSurvivesTheKillAndReportsIt) {
  const std::string dir = unique_dir("migrate");
  const compiler::PccResult pcc = build_fixed_model();
  RecoveryRun run(pcc, kill_plan(1, 25), RecoveryPolicy::kMigrate, dir, 10);
  obs::MetricsRegistry metrics;
  obs::FlightRecorder flight(pcc.partition.ranks());
  run.supervisor->set_metrics(&metrics);
  run.supervisor->set_flight_recorder(&flight);
  run.supervisor->arm();

  const runtime::RunReport rep = run.sim->run(60);

  // The run completed every tick in declared degraded mode.
  EXPECT_EQ(rep.ticks, 60u);
  EXPECT_EQ(rep.recoveries, 1u);
  ASSERT_EQ(run.supervisor->events().size(), 1u);
  const resilience::RecoveryEvent& ev = run.supervisor->events().front();
  EXPECT_EQ(ev.dead_rank, 1);
  EXPECT_EQ(ev.detected_tick, 26u);  // first boundary after the kill tick
  EXPECT_EQ(ev.checkpoint_tick, 20u);
  EXPECT_EQ(ev.ticks_lost, 6u);
  EXPECT_EQ(rep.recovery_ticks_lost, ev.ticks_lost);
  EXPECT_EQ(ev.policy, RecoveryPolicy::kMigrate);
  EXPECT_EQ(ev.cores_recovered, pcc.partition.cores_of(1).size());
  EXPECT_EQ(ev.cores_migrated, ev.cores_recovered);

  // The dead rank ends the run owning nothing.
  EXPECT_TRUE(run.sim->partition().cores_of(1).empty());
  EXPECT_EQ(run.sim->partition().num_cores(), pcc.partition.num_cores());

  // Observability: JSONL trace record, metrics series, flight-ring event.
  EXPECT_NE(run.trace_os.str().find("\"type\":\"recovery\""),
            std::string::npos);
  EXPECT_NE(run.trace_os.str().find("\"policy\":\"migrate\""),
            std::string::npos);
  bool saw_counter = false;
  bool saw_gauge = false;
  for (const obs::MetricValue& s : metrics.snapshot()) {
    if (s.name == "compass.recoveries") {
      saw_counter = true;
      EXPECT_EQ(s.count, 1u);
    }
    if (s.name == "compass.recovery.ticks_lost") {
      saw_gauge = true;
      EXPECT_EQ(s.value, 6.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  std::ostringstream flight_os;
  flight.dump(flight_os, "test");
  EXPECT_NE(flight_os.str().find("\"kind\":\"recovery\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(RecoverySupervisor, BaselineSnapshotSurvivesAnEarlyKill) {
  const std::string dir = unique_dir("baseline");
  const compiler::PccResult pcc = build_fixed_model();
  // No periodic checkpoints at all: only arm()'s baseline stands between
  // the kill and an unrecoverable run.
  RecoveryRun run(pcc, kill_plan(0, 3), RecoveryPolicy::kMigrate, dir, 0);
  run.supervisor->arm();
  const runtime::RunReport rep = run.sim->run(20);
  EXPECT_EQ(rep.ticks, 20u);
  EXPECT_EQ(rep.recoveries, 1u);
  ASSERT_EQ(run.supervisor->events().size(), 1u);
  EXPECT_EQ(run.supervisor->events().front().checkpoint_tick, 0u);
  EXPECT_EQ(run.supervisor->events().front().ticks_lost, 4u);
  EXPECT_TRUE(run.sim->partition().cores_of(0).empty());
  fs::remove_all(dir);
}

// --- Surviving a kill: restart-rank -----------------------------------------

TEST(RecoverySupervisor, RestartRankRevivesInPlace) {
  const std::string dir = unique_dir("restart");
  const compiler::PccResult pcc = build_fixed_model();
  RecoveryRun run(pcc, kill_plan(1, 25), RecoveryPolicy::kRestartRank, dir,
                  10);
  run.supervisor->arm();
  const runtime::RunReport rep = run.sim->run(60);
  EXPECT_EQ(rep.ticks, 60u);
  EXPECT_EQ(rep.recoveries, 1u);
  ASSERT_EQ(run.supervisor->events().size(), 1u);
  EXPECT_EQ(run.supervisor->events().front().cores_migrated, 0u);
  // The rank keeps its cores and is alive again: no further traffic loss.
  EXPECT_EQ(run.sim->partition().cores_of(1).size(),
            pcc.partition.cores_of(1).size());
  EXPECT_LT(run.faulty->dead_rank(), 0);
  const std::uint64_t faults_at_recovery = rep.faults_injected;
  EXPECT_GT(faults_at_recovery, 0u);  // the death itself dropped messages
  fs::remove_all(dir);
}

// --- Abort stays bit-for-bit today's semantics ------------------------------

TEST(RecoverySupervisor, AbortPolicyIsBitForBitInert) {
  const std::string dir_a = unique_dir("abort_a");
  const std::string dir_b = unique_dir("abort_b");
  const compiler::PccResult pcc = build_fixed_model();

  // Plain faulty run, no supervisor anywhere near it.
  RecoveryRun plain(pcc, kill_plan(1, 25), RecoveryPolicy::kAbort, dir_a, 0);
  const runtime::RunReport rep_plain = plain.sim->run(60);

  // Same run with an armed abort supervisor: arm() must be a no-op.
  RecoveryRun armed(pcc, kill_plan(1, 25), RecoveryPolicy::kAbort, dir_b, 0);
  armed.supervisor->arm();
  const runtime::RunReport rep_armed = armed.sim->run(60);

  EXPECT_EQ(rep_armed.recoveries, 0u);
  EXPECT_TRUE(armed.supervisor->events().empty());
  EXPECT_EQ(model_bytes(plain.model), model_bytes(armed.model));
  EXPECT_EQ(plain.spikes, armed.spikes);
  EXPECT_EQ(plain.trace_os.str(), armed.trace_os.str());
  EXPECT_EQ(rep_plain.fired_spikes, rep_armed.fired_spikes);
  EXPECT_EQ(rep_plain.spikes_lost, rep_armed.spikes_lost);
  // No baseline snapshot was written either.
  EXPECT_EQ(CheckpointManager::latest_in(dir_b), "");
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
}

// --- Determinism: transports and widths -------------------------------------

TEST(RecoveryDeterminism, MigrateIsByteIdenticalAcrossTransports) {
  const std::string dir_mpi = unique_dir("det_mpi");
  const std::string dir_pgas = unique_dir("det_pgas");
  const compiler::PccResult pcc = build_fixed_model();

  RecoveryRun mpi(pcc, kill_plan(1, 25), RecoveryPolicy::kMigrate, dir_mpi, 10,
                  TransportKind::kMpi);
  mpi.supervisor->arm();
  const runtime::RunReport rep_mpi = mpi.sim->run(60);

  RecoveryRun pgas(pcc, kill_plan(1, 25), RecoveryPolicy::kMigrate, dir_pgas,
                   10, TransportKind::kPgas);
  pgas.supervisor->arm();
  const runtime::RunReport rep_pgas = pgas.sim->run(60);

  EXPECT_EQ(rep_mpi.recoveries, 1u);
  EXPECT_EQ(rep_pgas.recoveries, 1u);
  EXPECT_EQ(model_bytes(mpi.model), model_bytes(pgas.model));
  EXPECT_EQ(mpi.spikes, pgas.spikes);
  EXPECT_EQ(rep_mpi.fired_spikes, rep_pgas.fired_spikes);
  EXPECT_EQ(rep_mpi.recovery_ticks_lost, rep_pgas.recovery_ticks_lost);
  // Both planners moved the orphans to the same new homes.
  for (int r = 0; r < pcc.partition.ranks(); ++r) {
    const auto a = mpi.sim->partition().cores_of(r);
    const auto b = pgas.sim->partition().cores_of(r);
    ASSERT_EQ(a.size(), b.size()) << "rank " << r;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  fs::remove_all(dir_mpi);
  fs::remove_all(dir_pgas);
}

TEST(RecoveryDeterminism, MigrateIsByteIdenticalAcrossThreadWidths) {
  const std::string dir_1 = unique_dir("det_t1");
  const std::string dir_4 = unique_dir("det_t4");
  const compiler::PccResult narrow = build_fixed_model(3, 1);
  const compiler::PccResult wide = build_fixed_model(3, 4);

  RecoveryRun t1(narrow, kill_plan(2, 17), RecoveryPolicy::kMigrate, dir_1, 8);
  t1.supervisor->arm();
  const runtime::RunReport rep1 = t1.sim->run(50);

  RecoveryRun t4(wide, kill_plan(2, 17), RecoveryPolicy::kMigrate, dir_4, 8);
  t4.supervisor->arm();
  const runtime::RunReport rep4 = t4.sim->run(50);

  EXPECT_EQ(rep1.recoveries, 1u);
  EXPECT_EQ(rep4.recoveries, 1u);
  EXPECT_EQ(model_bytes(t1.model), model_bytes(t4.model));
  EXPECT_EQ(t1.spikes, t4.spikes);
  EXPECT_EQ(rep1.fired_spikes, rep4.fired_spikes);
  EXPECT_EQ(rep1.spikes_lost, rep4.spikes_lost);
  fs::remove_all(dir_1);
  fs::remove_all(dir_4);
}

// --- Recovery counters survive their own checkpoint round-trip --------------

TEST(RecoveryCheckpoint, CountersRoundTripAndOldFilesStillLoad) {
  const std::string dir = unique_dir("counters");
  const compiler::PccResult pcc = build_fixed_model();
  RecoveryRun run(pcc, kill_plan(1, 15), RecoveryPolicy::kMigrate, dir, 6);
  run.supervisor->arm();
  run.sim->run(30);
  ASSERT_EQ(run.sim->report().recoveries, 1u);

  const resilience::Checkpoint cp = resilience::capture(*run.sim, run.model);
  const std::string bytes = resilience::serialize_checkpoint(cp);
  const resilience::Checkpoint back = resilience::parse_checkpoint(bytes);
  EXPECT_EQ(back.report.recoveries, 1u);
  EXPECT_EQ(back.report.recovery_ticks_lost,
            run.sim->report().recovery_ticks_lost);
  fs::remove_all(dir);
}

// --- No usable checkpoint is a typed error ----------------------------------

TEST(RecoverySupervisor, MissingCheckpointIsTypedRecoveryError) {
  const std::string dir = unique_dir("no_ckpt");
  const compiler::PccResult pcc = build_fixed_model();
  RecoveryRun run(pcc, kill_plan(1, 5), RecoveryPolicy::kMigrate, dir, 0);
  run.supervisor->arm();
  fs::remove_all(dir);  // destroy the baseline before the kill fires
  EXPECT_THROW(run.sim->run(20), RecoveryError);
}

// --- Chaos soak -------------------------------------------------------------

// Randomized plans × degradation policies × recovery modes. Every
// combination must either complete all ticks (with the recovery reported)
// or fail with a typed error — never UB, never silence. Runs under the
// asan-ubsan-recovery and tsan-recovery presets, so "clean" is enforced by
// the sanitizers, not by hope.
TEST(RecoveryChaosSoak, RandomPlansCompleteOrFailTyped) {
  std::mt19937_64 rng(20120815);  // fixed seed: the soak itself is replayable
  const compiler::PccResult pcc = build_fixed_model();
  const int ranks = pcc.partition.ranks();
  int completed = 0;
  for (int iter = 0; iter < 10; ++iter) {
    const int kill_rank = static_cast<int>(rng() % static_cast<unsigned>(ranks));
    const std::uint64_t kill_tick = rng() % 30;
    const std::uint64_t every = 3 + rng() % 9;
    const RecoveryPolicy policy = (rng() & 1) != 0
                                      ? RecoveryPolicy::kMigrate
                                      : RecoveryPolicy::kRestartRank;
    std::string spec = "kill-rank=" + std::to_string(kill_rank) +
                       ",kill-tick=" + std::to_string(kill_tick) +
                       ",seed=" + std::to_string(rng() % 100000);
    if ((rng() & 1) != 0) spec += ",drop=0.05";
    if ((rng() & 3) == 0) spec += ",policy=retry";
    const std::string dir = unique_dir("soak");
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + spec + " policy=" +
                 resilience::to_string(policy) + " every=" +
                 std::to_string(every));
    try {
      RecoveryRun run(pcc, FaultPlan::parse(spec), policy, dir, every);
      run.supervisor->arm();
      const runtime::RunReport rep = run.sim->run(40);
      EXPECT_EQ(rep.ticks, 40u);
      EXPECT_EQ(rep.recoveries, 1u);
      EXPECT_LE(rep.recovery_ticks_lost, 40u);
      ++completed;
    } catch (const RecoveryError&) {
    } catch (const CheckpointError&) {
    } catch (const resilience::FaultError&) {
    }
    fs::remove_all(dir);
  }
  // The soak is vacuous if nothing ever survives.
  EXPECT_GT(completed, 0);
}

}  // namespace
}  // namespace compass
