// Golden regression test: a fixed macaque model (seed 2012, 77 cores, 3
// ranks x 2 threads) must reproduce these exact event counts forever. Any
// change to PRNG sequences, wiring order, neuron dynamics, routing, or the
// CoCoMac generator shows up here first.
//
// If a change is *intentional* (e.g. a deliberate model revision), regenerate
// the constants with the recipe in this file's comments and update them in
// the same commit as the change — never loosen the comparisons.
#include <gtest/gtest.h>

#include <vector>

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "compiler/pcc.h"
#include "runtime/compass.h"

namespace compass {
namespace {

// Regeneration recipe: build the same spec/options below, run 30 ticks with
// tick-series recording, and print inventory/report fields.
constexpr std::uint64_t kGoldenSynapses = 1263795;
constexpr std::uint64_t kGoldenWhite = 9498;
constexpr std::uint64_t kGoldenGray = 10214;
constexpr std::uint64_t kGoldenFired = 5907;
constexpr std::uint64_t kGoldenLocal = 3941;
constexpr std::uint64_t kGoldenRemote = 1966;
constexpr std::uint64_t kGoldenMessages = 175;
constexpr std::uint64_t kGoldenSynapticEvents = 301669;
constexpr std::uint64_t kGoldenSeries[30] = {
    11,  26,  58,  87,  109, 169, 168, 205, 201, 220,
    196, 266, 240, 262, 247, 242, 227, 226, 228, 246,
    251, 262, 237, 220, 217, 236, 212, 199, 232, 207};

compiler::PccResult golden_compile() {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  mopt.seed = 2012;
  compiler::PccOptions popt;
  popt.ranks = 3;
  popt.threads_per_rank = 2;
  return compiler::compile(cocomac::build_macaque_spec(mopt), popt);
}

TEST(Golden, ModelConstructionIsFrozen) {
  const compiler::PccResult pcc = golden_compile();
  EXPECT_EQ(pcc.model.inventory().synapses, kGoldenSynapses);
  EXPECT_EQ(pcc.stats.white_connections, kGoldenWhite);
  EXPECT_EQ(pcc.stats.gray_connections, kGoldenGray);
}

TEST(Golden, SimulationTraceIsFrozen) {
  compiler::PccResult pcc = golden_compile();
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Compass sim(pcc.model, pcc.partition, transport);
  sim.enable_tick_series(true);
  const runtime::RunReport rep = sim.run(30);

  EXPECT_EQ(rep.fired_spikes, kGoldenFired);
  EXPECT_EQ(rep.routed_spikes, kGoldenFired);
  EXPECT_EQ(rep.local_spikes, kGoldenLocal);
  EXPECT_EQ(rep.remote_spikes, kGoldenRemote);
  EXPECT_EQ(rep.messages, kGoldenMessages);
  EXPECT_EQ(rep.synaptic_events, kGoldenSynapticEvents);

  const runtime::TickSeries& s = sim.tick_series();
  ASSERT_EQ(s.spikes.size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(s.spikes[i], kGoldenSeries[i]) << "tick " << i;
  }
}

}  // namespace
}  // namespace compass
