// Tests for the 5-D torus topology model and its hop-latency integration
// with the transports.
#include "comm/torus.h"

#include <gtest/gtest.h>

#include <vector>

#include "comm/mpi_transport.h"
#include "comm/pgas_transport.h"

namespace compass::comm {
namespace {

TEST(Torus, ExplicitDimsAndNodeCount) {
  const TorusTopology t({4, 3, 2, 1, 1});
  EXPECT_EQ(t.nodes(), 24);
}

TEST(Torus, RejectsBadDims) {
  EXPECT_THROW(TorusTopology({0, 1, 1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(TorusTopology::blue_gene_q(0), std::invalid_argument);
}

TEST(Torus, FactorisationCoversNodeCount) {
  for (int nodes : {1, 2, 7, 16, 24, 100, 1024, 1023}) {
    const TorusTopology t = TorusTopology::blue_gene_q(nodes);
    EXPECT_EQ(t.nodes(), nodes) << nodes;
    int product = 1;
    for (int d : t.dims()) product *= d;
    EXPECT_EQ(product, nodes) << nodes;
  }
}

TEST(Torus, FactorisationIsBalanced) {
  const TorusTopology t = TorusTopology::blue_gene_q(1024);
  // 2^10 over 5 dims -> 4x4x4x4x4.
  for (int d : t.dims()) EXPECT_EQ(d, 4);
}

TEST(Torus, FactorisationHandlesAwkwardNodeCounts) {
  // Primes, prime powers, highly composite, and non-smooth counts: the
  // factorisation must always multiply back to the node count, with dims
  // sorted descending (the canonical orientation placement relies on).
  for (int nodes : {1, 13, 97, 1009, 64, 128, 1024, 4096, 60, 360, 2310,
                    30030, 2 * 3 * 5 * 7 * 11, 999}) {
    const TorusTopology t = TorusTopology::blue_gene_q(nodes);
    std::int64_t product = 1;
    for (int d : t.dims()) {
      EXPECT_GE(d, 1) << nodes;
      product *= d;
    }
    EXPECT_EQ(product, nodes) << nodes;
    for (std::size_t d = 0; d + 1 < 5; ++d) {
      EXPECT_GE(t.dims()[d], t.dims()[d + 1]) << "nodes " << nodes;
    }
  }
}

TEST(TorusTransport, ExplicitNodeMapOverridesBlockEmbedding) {
  // 4 ranks on a ring of 4 nodes. The explicit map pins ranks 0 and 1 to
  // antipodal nodes (2 hops); the default block embedding puts them 1 hop
  // apart; a map sharing one node makes the same send hop-free.
  const TorusTopology topo({4, 1, 1, 1, 1});
  CommCostModel cost;
  MpiTransport mapped(4, cost), blocked(4, cost), shared(4, cost),
      flat(4, cost);
  mapped.set_hop_model(&topo, std::vector<int>{0, 2, 1, 3});
  blocked.set_hop_model(&topo, /*ranks_per_node=*/1);
  shared.set_hop_model(&topo, std::vector<int>{0, 0, 2, 2});

  const std::vector<arch::WireSpike> payload = {{1, 0, 0}};
  for (MpiTransport* t : {&mapped, &blocked, &shared, &flat}) {
    t->begin_tick();
    t->send(0, 1, payload);
    t->exchange();
  }
  const double hop = cost.params().hop_latency_s;
  EXPECT_NEAR(mapped.send_time(0) - flat.send_time(0), 2 * hop, 1e-15);
  EXPECT_NEAR(blocked.send_time(0) - flat.send_time(0), 1 * hop, 1e-15);
  EXPECT_NEAR(shared.send_time(0) - flat.send_time(0), 0.0, 1e-15);

  // Validation: the map must cover every rank with an in-range node id.
  MpiTransport bad(4, cost);
  EXPECT_THROW(bad.set_hop_model(&topo, std::vector<int>{0, 1}),
               std::invalid_argument);
  EXPECT_THROW(bad.set_hop_model(&topo, std::vector<int>{0, 1, 2, 9}),
               std::invalid_argument);
}

TEST(Torus, CoordinatesRoundTrip) {
  const TorusTopology t({3, 2, 2, 1, 1});
  for (int n = 0; n < t.nodes(); ++n) {
    const auto c = t.coordinates(n);
    int back = 0;
    for (std::size_t d = 0; d < 5; ++d) back = back * t.dims()[d] + c[d];
    EXPECT_EQ(back, n);
    for (std::size_t d = 0; d < 5; ++d) {
      EXPECT_GE(c[d], 0);
      EXPECT_LT(c[d], t.dims()[d]);
    }
  }
}

TEST(Torus, HopsAreAMetric) {
  const TorusTopology t({4, 4, 2, 1, 1});
  for (int a = 0; a < t.nodes(); ++a) {
    EXPECT_EQ(t.hops(a, a), 0);
    for (int b = 0; b < t.nodes(); ++b) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));  // symmetry
      if (a != b) {
        EXPECT_GE(t.hops(a, b), 1);
      }
      for (int c = 0; c < t.nodes(); ++c) {
        EXPECT_LE(t.hops(a, c), t.hops(a, b) + t.hops(b, c));  // triangle
      }
    }
  }
}

TEST(Torus, WraparoundShortcut) {
  // On a ring of 8, node 0 -> node 7 is one hop backwards, not seven.
  const TorusTopology t({8, 1, 1, 1, 1});
  EXPECT_EQ(t.hops(0, 7), 1);
  EXPECT_EQ(t.hops(0, 4), 4);  // antipode
  EXPECT_EQ(t.diameter(), 4);
}

TEST(Torus, DiameterIsSumOfHalfDims) {
  const TorusTopology t({6, 4, 3, 2, 1});
  EXPECT_EQ(t.diameter(), 3 + 2 + 1 + 1 + 0);
  int max_hops = 0;
  for (int a = 0; a < t.nodes(); ++a) {
    for (int b = 0; b < t.nodes(); ++b) max_hops = std::max(max_hops, t.hops(a, b));
  }
  EXPECT_EQ(max_hops, t.diameter());
}

TEST(Torus, AverageHopsMatchesBruteForce) {
  const TorusTopology t({4, 3, 2, 1, 1});
  double sum = 0.0;
  int pairs = 0;
  for (int a = 0; a < t.nodes(); ++a) {
    for (int b = 0; b < t.nodes(); ++b) {
      if (a != b) {
        sum += t.hops(a, b);
        ++pairs;
      }
    }
  }
  EXPECT_NEAR(t.average_hops(), sum / pairs, 1e-12);
}

TEST(Torus, SingleNodeHasZeroAverage) {
  const TorusTopology t({1, 1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(t.average_hops(), 0.0);
  EXPECT_EQ(t.diameter(), 0);
}

TEST(TorusTransport, HopLatencyChargedOnSends) {
  const TorusTopology topo({4, 1, 1, 1, 1});
  CommCostModel cost;
  MpiTransport with(4, cost), without(4, cost);
  with.set_hop_model(&topo, /*ranks_per_node=*/1);

  const std::vector<arch::WireSpike> payload = {{1, 0, 0}};
  for (Transport* t : {static_cast<Transport*>(&with),
                       static_cast<Transport*>(&without)}) {
    t->begin_tick();
    t->send(0, 2, payload);  // antipode on the ring: 2 hops
    t->exchange();
  }
  const double delta = with.send_time(0) - without.send_time(0);
  EXPECT_NEAR(delta, 2 * cost.params().hop_latency_s, 1e-15);
}

TEST(TorusTransport, NodeLocalTrafficIsHopFree) {
  const TorusTopology topo({2, 1, 1, 1, 1});
  CommCostModel cost;
  PgasTransport t(4, cost);
  t.set_hop_model(&topo, /*ranks_per_node=*/2);  // ranks 0,1 on node 0
  t.begin_tick();
  t.send(0, 1, std::vector<arch::WireSpike>{{1, 0, 0}});
  t.exchange();
  EXPECT_NEAR(t.send_time(0), cost.pgas_put_cost(t.spike_wire_bytes()), 1e-15);
}

}  // namespace
}  // namespace compass::comm
