// Unit tests for the virtual-time ledger: makespan composition, the
// Reduce-Scatter/local-delivery overlap, and slowdown accounting — plus the
// divide-by-zero guards on the derived-rate helpers (RunReport::slowdown(),
// RunReport::mean_rate_hz(), RunLedger::slowdown_vs_realtime()).
#include "perf/ledger.h"

#include <gtest/gtest.h>

#include "runtime/compass.h"

namespace compass::perf {
namespace {

TEST(ComposeTick, EmptyIsZero) {
  const PhaseBreakdown b = compose_tick({});
  EXPECT_DOUBLE_EQ(b.total(), 0.0);
}

TEST(ComposeTick, SingleRankPassesThrough) {
  RankTickTimes r;
  r.synapse = 1.0;
  r.neuron = 2.0;
  r.send = 0.5;
  r.local_deliver = 0.25;
  r.sync = 0.1;
  r.recv = 0.3;
  const PhaseBreakdown b = compose_tick({r});
  EXPECT_DOUBLE_EQ(b.synapse, 1.0);
  EXPECT_DOUBLE_EQ(b.neuron, 2.5);                   // neuron + send
  EXPECT_DOUBLE_EQ(b.network, 0.25 + 0.3);           // max(sync, local) + recv
  EXPECT_DOUBLE_EQ(b.total(), 1.0 + 2.5 + 0.55);
}

TEST(ComposeTick, TakesMaxAcrossRanks) {
  RankTickTimes fast, slow;
  fast.synapse = 1.0;
  fast.neuron = 1.0;
  slow.synapse = 3.0;
  slow.neuron = 0.5;
  const PhaseBreakdown b = compose_tick({fast, slow});
  // Phase barriers: each phase waits for its slowest rank independently.
  EXPECT_DOUBLE_EQ(b.synapse, 3.0);
  EXPECT_DOUBLE_EQ(b.neuron, 1.0);
}

TEST(ComposeTick, OverlapHidesTheSmallerOfSyncAndLocal) {
  RankTickTimes r;
  r.sync = 2.0;
  r.local_deliver = 1.5;
  r.recv = 0.5;
  const PhaseBreakdown with = compose_tick({r}, /*overlap_collective=*/true);
  const PhaseBreakdown without = compose_tick({r}, /*overlap_collective=*/false);
  EXPECT_DOUBLE_EQ(with.network, 2.0 + 0.5);
  EXPECT_DOUBLE_EQ(without.network, 2.0 + 1.5 + 0.5);
  EXPECT_LT(with.network, without.network);
}

TEST(ComposeTick, OverlapIsFreeWhenLocalDominates) {
  RankTickTimes r;
  r.sync = 0.5;
  r.local_deliver = 4.0;
  const PhaseBreakdown with = compose_tick({r}, true);
  EXPECT_DOUBLE_EQ(with.network, 4.0);  // the collective fully hides
}

TEST(ComposeTick, AggregationRidesTheNeuronPhase) {
  RankTickTimes r;
  r.neuron = 1.0;
  r.aggregate = 0.25;
  r.send = 0.5;
  const PhaseBreakdown b = compose_tick({r});
  EXPECT_DOUBLE_EQ(b.neuron, 1.75);  // neuron + aggregate + send
}

TEST(ComposeTick, RemoteDeliveryRidesTheReceiveLeg) {
  RankTickTimes r;
  r.recv = 0.5;
  r.remote_deliver = 0.75;
  r.sync = 0.1;
  const PhaseBreakdown b = compose_tick({r});
  EXPECT_DOUBLE_EQ(b.network, 0.1 + 0.5 + 0.75);
}

TEST(PhaseBreakdown, PlusEqualsAccumulates) {
  PhaseBreakdown a{1, 2, 3}, b{10, 20, 30};
  a += b;
  EXPECT_DOUBLE_EQ(a.synapse, 11);
  EXPECT_DOUBLE_EQ(a.neuron, 22);
  EXPECT_DOUBLE_EQ(a.network, 33);
}

TEST(RunLedger, CommitTickReturnsTheTicksBreakdown) {
  RunLedger ledger(2);
  ledger.tick_scratch()[0].synapse = 0.5;
  ledger.tick_scratch()[1].synapse = 1.0;
  ledger.tick_scratch()[0].neuron = 2.0;
  const PhaseBreakdown tick = ledger.commit_tick();
  EXPECT_DOUBLE_EQ(tick.synapse, 1.0);
  EXPECT_DOUBLE_EQ(tick.neuron, 2.0);
  // The returned breakdowns sum to totals() exactly (the trace layer's
  // per-tick records rely on this).
  PhaseBreakdown sum = tick;
  ledger.tick_scratch()[1].synapse = 3.0;
  sum += ledger.commit_tick();
  EXPECT_DOUBLE_EQ(sum.synapse, ledger.totals().synapse);
  EXPECT_DOUBLE_EQ(sum.neuron, ledger.totals().neuron);
  EXPECT_DOUBLE_EQ(sum.network, ledger.totals().network);
}

TEST(RunLedger, AccumulatesOverTicks) {
  RunLedger ledger(2);
  for (int tick = 0; tick < 10; ++tick) {
    ledger.tick_scratch()[0].synapse = 0.5;
    ledger.tick_scratch()[1].synapse = 1.0;
    ledger.commit_tick();
  }
  EXPECT_EQ(ledger.ticks(), 10u);
  EXPECT_DOUBLE_EQ(ledger.totals().synapse, 10.0);  // max(0.5, 1.0) * 10
}

TEST(RunLedger, ScratchResetsBetweenTicks) {
  RunLedger ledger(1);
  ledger.tick_scratch()[0].neuron = 7.0;
  ledger.commit_tick();
  EXPECT_DOUBLE_EQ(ledger.tick_scratch()[0].neuron, 0.0);
  ledger.commit_tick();  // empty tick adds nothing
  EXPECT_DOUBLE_EQ(ledger.totals().neuron, 7.0);
}

TEST(RunLedger, SlowdownVsRealtime) {
  RunLedger ledger(1);
  for (int tick = 0; tick < 4; ++tick) {
    ledger.tick_scratch()[0].neuron = 2e-3;  // 2 ms of work per 1 ms tick
    ledger.commit_tick();
  }
  EXPECT_DOUBLE_EQ(ledger.slowdown_vs_realtime(), 2.0);
}

TEST(RunLedger, SlowdownOfEmptyRunIsZero) {
  RunLedger ledger(4);
  EXPECT_DOUBLE_EQ(ledger.slowdown_vs_realtime(), 0.0);
}

TEST(RunLedger, HonoursOverlapFlag) {
  RunLedger with(1, true), without(1, false);
  for (RunLedger* l : {&with, &without}) {
    l->tick_scratch()[0].sync = 1.0;
    l->tick_scratch()[0].local_deliver = 1.0;
    l->commit_tick();
  }
  EXPECT_DOUBLE_EQ(with.totals().network, 1.0);
  EXPECT_DOUBLE_EQ(without.totals().network, 2.0);
}

// --- RunReport derived-rate guards ----------------------------------------

TEST(RunReport, SlowdownOfEmptyReportIsZero) {
  runtime::RunReport rep;
  rep.virtual_time.neuron = 1.0;  // time but no ticks: still no division
  EXPECT_DOUBLE_EQ(rep.slowdown(), 0.0);
}

TEST(RunReport, SlowdownVsBiologicalTime) {
  runtime::RunReport rep;
  rep.ticks = 1000;  // 1 biological second
  rep.virtual_time.neuron = 2.0;
  EXPECT_DOUBLE_EQ(rep.slowdown(), 2.0);
}

TEST(RunReport, MeanRateGuardsBothZeroDenominators) {
  runtime::RunReport rep;
  rep.fired_spikes = 42;
  EXPECT_DOUBLE_EQ(rep.mean_rate_hz(100), 0.0);  // ticks == 0
  rep.ticks = 1000;
  EXPECT_DOUBLE_EQ(rep.mean_rate_hz(0), 0.0);  // neurons == 0
  // 42 spikes over 1 biological second across 100 neurons -> 0.42 Hz.
  EXPECT_DOUBLE_EQ(rep.mean_rate_hz(100), 0.42);
}

}  // namespace
}  // namespace compass::perf
