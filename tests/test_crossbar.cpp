// Unit tests for the 256x256 binary synaptic crossbar.
#include "arch/crossbar.h"

#include <gtest/gtest.h>

namespace compass::arch {
namespace {

TEST(Crossbar, StartsEmpty) {
  Crossbar x;
  EXPECT_EQ(x.synapse_count(), 0u);
  EXPECT_FALSE(x.test(0, 0));
  EXPECT_FALSE(x.test(255, 255));
}

TEST(Crossbar, SetAndTest) {
  Crossbar x;
  x.set(3, 7);
  EXPECT_TRUE(x.test(3, 7));
  EXPECT_FALSE(x.test(7, 3));  // directed: axon row vs neuron column
  EXPECT_EQ(x.synapse_count(), 1u);
}

TEST(Crossbar, ClearSynapse) {
  Crossbar x;
  x.set(10, 20);
  x.set(10, 20, false);
  EXPECT_FALSE(x.test(10, 20));
  EXPECT_EQ(x.synapse_count(), 0u);
}

TEST(Crossbar, RowIsIndependent) {
  Crossbar x;
  x.set(5, 100);
  EXPECT_TRUE(x.row(5).test(100));
  EXPECT_FALSE(x.row(6).test(100));
  EXPECT_FALSE(x.row(4).test(100));
}

TEST(Crossbar, DiagonalIdentity) {
  Crossbar x;
  for (unsigned i = 0; i < 256; ++i) x.set(i, i);
  EXPECT_EQ(x.synapse_count(), 256u);
  for (unsigned i = 0; i < 256; ++i) {
    EXPECT_TRUE(x.test(i, i));
    EXPECT_FALSE(x.test(i, (i + 1) % 256));
  }
}

TEST(Crossbar, FullCrossbarCount) {
  Crossbar x;
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned n = 0; n < 256; ++n) x.set(a, n);
  }
  EXPECT_EQ(x.synapse_count(), 65536u);  // the paper's synapse/core ratio
}

TEST(Crossbar, ClearAll) {
  Crossbar x;
  x.set(0, 0);
  x.set(255, 255);
  x.clear();
  EXPECT_EQ(x.synapse_count(), 0u);
}

TEST(Crossbar, EqualityIsStructural) {
  Crossbar a, b;
  a.set(1, 2);
  EXPECT_FALSE(a == b);
  b.set(1, 2);
  EXPECT_TRUE(a == b);
}

TEST(Crossbar, StorageIsTwoBitsPerSynapse) {
  // The paper's memory claim versus C2 rests on 1-bit synapses. Since the
  // bit-parallel engine the crossbar also carries a column-major mirror
  // (DESIGN.md §12), so each synapse is stored twice — 16 KiB per core for
  // 65536 synapses, still 16x+ smaller than C2's explicit records — plus
  // one 8-byte running synapse count (O(1) engine dispatch). Rows remain
  // the authoritative serialized layout (the checkpoint format is
  // unchanged).
  EXPECT_EQ(sizeof(Crossbar), 2u * 256u * 4u * 8u + 8u);
}

}  // namespace
}  // namespace compass::arch
