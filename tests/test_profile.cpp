// Parallel-profile layer tests: comm-matrix conservation against the run
// report, per-phase virtual-time totals (bit-exact vs RunReport), imbalance
// and overlap-efficiency invariants, critical-rank attribution counts, the
// offline analyzer's round-trip through --trace-out JSONL, and the JSON
// writers' validity.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "cocomac/macaque.h"
#include "comm/mpi_transport.h"
#include "comm/pgas_transport.h"
#include "compiler/pcc.h"
#include "json_lite.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/compass.h"

namespace compass {
namespace {

using testing::json_valid;

// --- CommMatrix unit tests -------------------------------------------------

TEST(CommMatrix, RecordAndTotals) {
  obs::CommMatrix m(3);
  m.record(0, 1, /*spikes=*/10, /*bytes=*/40);
  m.record(0, 1, 5, 20);
  m.record(2, 0, 7, 28);
  m.record_local(1, 100);

  EXPECT_EQ(m.at(0, 1).messages, 2u);
  EXPECT_EQ(m.at(0, 1).spikes, 15u);
  EXPECT_EQ(m.at(0, 1).bytes, 60u);
  // Diagonal carries spikes only — local routing never touches the wire.
  EXPECT_EQ(m.at(1, 1).messages, 0u);
  EXPECT_EQ(m.at(1, 1).spikes, 100u);
  EXPECT_EQ(m.at(1, 1).bytes, 0u);

  EXPECT_EQ(m.row_total(0).messages, 2u);
  EXPECT_EQ(m.col_total(1).spikes, 115u);
  EXPECT_EQ(m.col_total(0).messages, 1u);
  EXPECT_EQ(m.total().messages, 3u);
  EXPECT_EQ(m.total().spikes, 122u);
  EXPECT_EQ(m.total().bytes, 88u);
}

TEST(CommMatrix, EqualityIsCellwise) {
  obs::CommMatrix a(2), b(2);
  a.record(0, 1, 3, 12);
  EXPECT_FALSE(a == b);
  b.record(0, 1, 3, 12);
  EXPECT_TRUE(a == b);
}

TEST(ImbalanceFactor, EmptyAndZeroPhasesAreBalanced) {
  std::vector<obs::RankPhaseSeconds> none;
  EXPECT_DOUBLE_EQ(obs::imbalance_factor(none, &obs::RankPhaseSeconds::neuron),
                   1.0);
  std::vector<obs::RankPhaseSeconds> zeros(4);
  EXPECT_DOUBLE_EQ(obs::imbalance_factor(zeros, &obs::RankPhaseSeconds::neuron),
                   1.0);
}

TEST(ImbalanceFactor, MaxOverMean) {
  std::vector<obs::RankPhaseSeconds> v(4);
  v[0].neuron = 1.0;
  v[1].neuron = 1.0;
  v[2].neuron = 1.0;
  v[3].neuron = 5.0;  // mean = 2.0, max = 5.0
  EXPECT_DOUBLE_EQ(obs::imbalance_factor(v, &obs::RankPhaseSeconds::neuron),
                   2.5);
  // Other phases untouched -> balanced.
  EXPECT_DOUBLE_EQ(obs::imbalance_factor(v, &obs::RankPhaseSeconds::synapse),
                   1.0);
}

// --- End-to-end through Compass --------------------------------------------

compiler::PccResult build_model(int ranks = 3, int threads_per_rank = 2) {
  cocomac::MacaqueSpecOptions mopt;
  mopt.total_cores = 77;
  mopt.seed = 2012;
  compiler::PccOptions popt;
  popt.ranks = ranks;
  popt.threads_per_rank = threads_per_rank;
  return compiler::compile(cocomac::build_macaque_spec(mopt), popt);
}

struct ProfiledRun {
  runtime::RunReport report;
  obs::CommMatrix matrix{0};
  std::string trace_jsonl;
};

ProfiledRun run_profiled(const compiler::PccResult& pcc, bool use_pgas = false,
                         bool measure = true, bool with_trace = false,
                         arch::Tick ticks = 25) {
  arch::Model model = pcc.model;
  std::unique_ptr<comm::Transport> transport;
  if (use_pgas) {
    transport = std::make_unique<comm::PgasTransport>(pcc.partition.ranks(),
                                                      comm::CommCostModel{});
  } else {
    transport = std::make_unique<comm::MpiTransport>(pcc.partition.ranks(),
                                                     comm::CommCostModel{});
  }
  runtime::Config cfg;
  cfg.measure = measure;
  runtime::Compass sim(model, pcc.partition, *transport, cfg);

  obs::ProfileCollector collector(pcc.partition.ranks());
  sim.set_profile(&collector);

  std::ostringstream os;
  std::optional<obs::JsonlTraceWriter> writer;
  if (with_trace) {
    writer.emplace(os, obs::JsonlOptions{.include_measured = false});
    sim.add_trace_sink(&*writer);
  }

  ProfiledRun out;
  out.report = sim.run(ticks);
  out.matrix = collector.comm_matrix();
  out.trace_jsonl = os.str();
  return out;
}

TEST(ProfileCollector, TotalsAreBitExactAgainstRunReport) {
  const compiler::PccResult pcc = build_model();
  const ProfiledRun run = run_profiled(pcc);
  ASSERT_TRUE(run.report.profile.has_value());
  const obs::ProfileSummary& prof = *run.report.profile;

  // Both the report and the profiler accumulate the same composed per-tick
  // slices in the same order, so equality is exact, not approximate.
  EXPECT_EQ(prof.ticks, run.report.ticks);
  EXPECT_EQ(prof.totals.synapse, run.report.virtual_time.synapse);
  EXPECT_EQ(prof.totals.neuron, run.report.virtual_time.neuron);
  EXPECT_EQ(prof.totals.network, run.report.virtual_time.network);
}

TEST(ProfileCollector, ImbalanceAndOverlapInvariants) {
  const compiler::PccResult pcc = build_model();
  const ProfiledRun run = run_profiled(pcc);
  const obs::ProfileSummary& prof = *run.report.profile;

  ASSERT_EQ(prof.ranks(), 3);
  for (const double f : prof.imbalance) EXPECT_GE(f, 1.0);
  EXPECT_GE(prof.overlap_efficiency(), 0.0);
  EXPECT_LE(prof.overlap_efficiency(), 1.0);
  EXPECT_GE(prof.sync_s, 0.0);
  EXPECT_GE(prof.hidden_s, 0.0);
  EXPECT_LE(prof.hidden_s, prof.sync_s);

  // The composed synapse total is the sum of per-tick maxima of the same
  // per-rank values the collector accumulates, so no single rank's sum can
  // exceed it.
  for (const obs::RankPhaseSeconds& r : prof.rank_phase_s) {
    EXPECT_LE(r.synapse, prof.totals.synapse * (1.0 + 1e-12));
  }
}

TEST(ProfileCollector, CriticalCountsSumToTicksPerPhase) {
  const compiler::PccResult pcc = build_model();
  const arch::Tick ticks = 30;
  const ProfiledRun run = run_profiled(pcc, false, true, false, ticks);
  const obs::ProfileSummary& prof = *run.report.profile;

  std::uint64_t syn = 0, neu = 0, net = 0;
  for (const obs::RankCriticalCounts& c : prof.critical) {
    syn += c.synapse;
    neu += c.neuron;
    net += c.network;
  }
  // Exactly one rank sets each slice of every tick's makespan.
  EXPECT_EQ(syn, ticks);
  EXPECT_EQ(neu, ticks);
  EXPECT_EQ(net, ticks);
}

TEST(CommMatrixConservation, TotalsMatchRunReport) {
  const compiler::PccResult pcc = build_model();
  const ProfiledRun run = run_profiled(pcc);

  const obs::CommCell total = run.matrix.total();
  EXPECT_EQ(total.messages, run.report.messages);
  EXPECT_EQ(total.bytes, run.report.wire_bytes);
  EXPECT_EQ(total.spikes, run.report.routed_spikes);

  // Row and column sums are two decompositions of the same totals.
  obs::CommCell rows, cols;
  for (int r = 0; r < run.matrix.ranks(); ++r) {
    rows += run.matrix.row_total(r);
    cols += run.matrix.col_total(r);
  }
  EXPECT_EQ(rows, total);
  EXPECT_EQ(cols, total);

  // Diagonal = rank-local routing: spikes only, nothing on the wire.
  std::uint64_t diag_spikes = 0;
  for (int r = 0; r < run.matrix.ranks(); ++r) {
    EXPECT_EQ(run.matrix.at(r, r).messages, 0u);
    EXPECT_EQ(run.matrix.at(r, r).bytes, 0u);
    diag_spikes += run.matrix.at(r, r).spikes;
  }
  EXPECT_EQ(diag_spikes, run.report.local_spikes);
  EXPECT_EQ(total.spikes - diag_spikes, run.report.remote_spikes);
}

TEST(CommMatrixConservation, ByteIdenticalAcrossOmpThreadCounts) {
#ifdef _OPENMP
  const compiler::PccResult pcc = build_model();
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const ProfiledRun baseline = run_profiled(pcc, false, /*measure=*/false);
  for (const int threads : {2, 8}) {
    omp_set_num_threads(threads);
    const ProfiledRun run = run_profiled(pcc, false, /*measure=*/false);
    SCOPED_TRACE("OMP threads = " + std::to_string(threads));
    EXPECT_TRUE(run.matrix == baseline.matrix);
  }
  omp_set_num_threads(saved);
#else
  GTEST_SKIP() << "built without OpenMP; thread-count sweep not applicable";
#endif
}

TEST(CommMatrixConservation, MpiAndPgasAgree) {
  // At one thread per rank both transports aggregate identically (one
  // message per (src, dst) per tick), so the full matrix — message counts
  // included — is equal.
  const compiler::PccResult one = build_model(3, /*threads_per_rank=*/1);
  const ProfiledRun mpi1 = run_profiled(one, /*use_pgas=*/false, false);
  const ProfiledRun pgas1 = run_profiled(one, /*use_pgas=*/true, false);
  EXPECT_TRUE(mpi1.matrix == pgas1.matrix);

  // With several threads per rank PGAS issues one put per (thread, dst) while
  // MPI aggregates per rank, so message counts legitimately differ — but the
  // functional traffic (spikes, and bytes = spikes x wire-size) must agree
  // cell by cell.
  const compiler::PccResult two = build_model(3, /*threads_per_rank=*/2);
  const ProfiledRun mpi2 = run_profiled(two, /*use_pgas=*/false, false);
  const ProfiledRun pgas2 = run_profiled(two, /*use_pgas=*/true, false);
  for (int src = 0; src < 3; ++src) {
    for (int dst = 0; dst < 3; ++dst) {
      SCOPED_TRACE("cell " + std::to_string(src) + "->" + std::to_string(dst));
      EXPECT_EQ(mpi2.matrix.at(src, dst).spikes,
                pgas2.matrix.at(src, dst).spikes);
      EXPECT_EQ(mpi2.matrix.at(src, dst).bytes,
                pgas2.matrix.at(src, dst).bytes);
    }
  }
  EXPECT_GE(pgas2.matrix.total().messages, mpi2.matrix.total().messages);
}

TEST(ProfileCollector, DetachedRunCarriesNoProfile) {
  const compiler::PccResult pcc = build_model();
  arch::Model model = pcc.model;
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Compass sim(model, pcc.partition, transport);
  const runtime::RunReport rep = sim.run(5);
  EXPECT_FALSE(rep.profile.has_value());
}

TEST(ProfileCollector, RankCountMismatchIsRejected) {
  const compiler::PccResult pcc = build_model();
  arch::Model model = pcc.model;
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Compass sim(model, pcc.partition, transport);
  obs::ProfileCollector wrong(2);
  EXPECT_THROW(sim.set_profile(&wrong), std::invalid_argument);
}

// --- JSON writers ----------------------------------------------------------

TEST(ProfileJson, DocumentIsValidJson) {
  const compiler::PccResult pcc = build_model();
  const ProfiledRun run = run_profiled(pcc);
  std::ostringstream os;
  obs::write_profile_json(os, *run.report.profile, run.matrix);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"comm\""), std::string::npos);
  EXPECT_NE(os.str().find("\"imbalance\""), std::string::npos);
  EXPECT_NE(os.str().find("\"critical\""), std::string::npos);
}

TEST(ProfileJsonl, TraceCarriesOneProfileRecordAndStaysValid) {
  const compiler::PccResult pcc = build_model();
  const ProfiledRun run =
      run_profiled(pcc, false, /*measure=*/false, /*with_trace=*/true);

  std::istringstream is(run.trace_jsonl);
  std::string line;
  int profile_lines = 0;
  while (std::getline(is, line)) {
    EXPECT_TRUE(json_valid(line)) << line;
    if (line.find("\"type\":\"profile\"") != std::string::npos) {
      ++profile_lines;
    }
  }
  EXPECT_EQ(profile_lines, 1);
}

// --- Offline analyzer (analyze_trace / compass_prof) -----------------------

TEST(AnalyzeTrace, RoundTripReproducesRunReportExactly) {
  const compiler::PccResult pcc = build_model();
  const arch::Tick ticks = 25;
  const ProfiledRun run =
      run_profiled(pcc, false, /*measure=*/false, /*with_trace=*/true, ticks);

  std::istringstream is(run.trace_jsonl);
  const obs::TraceProfile tp = obs::analyze_trace(is);

  // Acceptance criterion: running the analyzer over the emitted JSONL
  // reproduces the run's per-phase virtual-time totals exactly (the %.17g
  // serialization round-trips doubles bit-for-bit, and the analyzer sums in
  // file = tick order).
  EXPECT_EQ(tp.ticks, ticks);
  EXPECT_EQ(tp.ranks, 3);
  EXPECT_EQ(tp.totals.synapse, run.report.virtual_time.synapse);
  EXPECT_EQ(tp.totals.neuron, run.report.virtual_time.neuron);
  EXPECT_EQ(tp.totals.network, run.report.virtual_time.network);

  // Functional totals from tick records.
  EXPECT_EQ(tp.fired, run.report.fired_spikes);
  EXPECT_EQ(tp.routed, run.report.routed_spikes);
  EXPECT_EQ(tp.local, run.report.local_spikes);
  EXPECT_EQ(tp.remote, run.report.remote_spikes);
  EXPECT_EQ(tp.messages, run.report.messages);
  EXPECT_EQ(tp.bytes, run.report.wire_bytes);

  for (const double f : tp.imbalance) EXPECT_GE(f, 1.0);

  // The embedded end-of-run profile record round-trips the online profile:
  // same totals, same comm matrix, overlap in range.
  ASSERT_TRUE(tp.has_profile);
  const obs::ProfileSummary& online = *run.report.profile;
  EXPECT_EQ(tp.profile.ticks, online.ticks);
  EXPECT_EQ(tp.profile.totals.synapse, online.totals.synapse);
  EXPECT_EQ(tp.profile.totals.neuron, online.totals.neuron);
  EXPECT_EQ(tp.profile.totals.network, online.totals.network);
  EXPECT_TRUE(tp.matrix == run.matrix);
  EXPECT_EQ(tp.matrix.total().messages, run.report.messages);
  EXPECT_EQ(tp.matrix.total().bytes, run.report.wire_bytes);
  EXPECT_GE(tp.profile.overlap_efficiency(), 0.0);
  EXPECT_LE(tp.profile.overlap_efficiency(), 1.0);
  for (std::size_t r = 0; r < tp.profile.critical.size(); ++r) {
    EXPECT_EQ(tp.profile.critical[r].synapse, online.critical[r].synapse);
    EXPECT_EQ(tp.profile.critical[r].neuron, online.critical[r].neuron);
    EXPECT_EQ(tp.profile.critical[r].network, online.critical[r].network);
  }
}

TEST(AnalyzeTrace, SpanDerivedRankTimesMatchOnlineCollector) {
  // With host measurement off, every per-rank figure in the trace is a
  // modelled double serialized at full precision, so the analyzer's
  // span-derived per-rank phase seconds equal the online collector's — the
  // two implement the same accounting independently.
  const compiler::PccResult pcc = build_model();
  const ProfiledRun run =
      run_profiled(pcc, false, /*measure=*/false, /*with_trace=*/true);

  std::istringstream is(run.trace_jsonl);
  const obs::TraceProfile tp = obs::analyze_trace(is);
  const obs::ProfileSummary& online = *run.report.profile;

  ASSERT_EQ(tp.rank_phase_s.size(), online.rank_phase_s.size());
  for (std::size_t r = 0; r < tp.rank_phase_s.size(); ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    EXPECT_EQ(tp.rank_phase_s[r].synapse, online.rank_phase_s[r].synapse);
    EXPECT_EQ(tp.rank_phase_s[r].neuron, online.rank_phase_s[r].neuron);
    EXPECT_EQ(tp.rank_phase_s[r].network, online.rank_phase_s[r].network);
  }
  // Synapse / neuron attribution is exact offline too (the span argmax is
  // the makespan argmax for those phases).
  for (std::size_t r = 0; r < tp.critical.size(); ++r) {
    EXPECT_EQ(tp.critical[r].synapse, online.critical[r].synapse);
    EXPECT_EQ(tp.critical[r].neuron, online.critical[r].neuron);
  }
}

TEST(AnalyzeTrace, TraceWithoutProfileRecordStillAnalyzes) {
  const compiler::PccResult pcc = build_model();
  arch::Model model = pcc.model;
  comm::MpiTransport transport(3, comm::CommCostModel{});
  runtime::Config cfg;
  cfg.measure = false;
  runtime::Compass sim(model, pcc.partition, transport, cfg);
  std::ostringstream os;
  obs::JsonlTraceWriter writer(os, obs::JsonlOptions{.include_measured = false});
  sim.add_trace_sink(&writer);
  const runtime::RunReport rep = sim.run(10);

  std::istringstream is(os.str());
  const obs::TraceProfile tp = obs::analyze_trace(is);
  EXPECT_FALSE(tp.has_profile);
  EXPECT_EQ(tp.ticks, 10u);
  EXPECT_EQ(tp.totals.synapse, rep.virtual_time.synapse);
  EXPECT_EQ(tp.totals.neuron, rep.virtual_time.neuron);
  EXPECT_EQ(tp.totals.network, rep.virtual_time.network);
}

TEST(AnalyzeTrace, MalformedLinesThrowWithLineNumber) {
  std::istringstream garbage("{\"type\":\"tick\",\"tick\":0}\nnot json\n");
  try {
    obs::analyze_trace(garbage);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(AnalyzeTrace, UnknownRecordTypesAreSkipped) {
  std::istringstream is(
      "{\"type\":\"future_record\",\"x\":1}\n"
      "{\"type\":\"tick\",\"tick\":0,\"synapse_s\":1.5,\"neuron_s\":2.5,"
      "\"network_s\":3.5,\"fired\":7}\n");
  const obs::TraceProfile tp = obs::analyze_trace(is);
  EXPECT_EQ(tp.ticks, 1u);
  EXPECT_DOUBLE_EQ(tp.totals.synapse, 1.5);
  EXPECT_DOUBLE_EQ(tp.totals.neuron, 2.5);
  EXPECT_DOUBLE_EQ(tp.totals.network, 3.5);
  EXPECT_EQ(tp.fired, 7u);
}

// --- Report writers --------------------------------------------------------

TEST(TraceReport, HumanReportNamesEveryPhaseAndTheMatrix) {
  const compiler::PccResult pcc = build_model();
  const ProfiledRun run =
      run_profiled(pcc, false, /*measure=*/false, /*with_trace=*/true);
  std::istringstream is(run.trace_jsonl);
  const obs::TraceProfile tp = obs::analyze_trace(is);

  std::ostringstream os;
  obs::write_trace_report(os, tp, /*top_k=*/2);
  const std::string report = os.str();
  EXPECT_NE(report.find("synapse"), std::string::npos);
  EXPECT_NE(report.find("neuron"), std::string::npos);
  EXPECT_NE(report.find("network"), std::string::npos);
  EXPECT_NE(report.find("imbalance"), std::string::npos);
  EXPECT_NE(report.find("comm matrix"), std::string::npos);
}

TEST(TraceReport, JsonReportIsValidJson) {
  const compiler::PccResult pcc = build_model();
  const ProfiledRun run =
      run_profiled(pcc, false, /*measure=*/false, /*with_trace=*/true);
  std::istringstream is(run.trace_jsonl);
  const obs::TraceProfile tp = obs::analyze_trace(is);

  std::ostringstream os;
  obs::write_trace_report_json(os, tp);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"profile\""), std::string::npos);
}

}  // namespace
}  // namespace compass
