# Empty compiler generated dependencies file for bench_rank_thread_tradeoff.
# This may be replaced when dependencies are built.
