file(REMOVE_RECURSE
  "CMakeFiles/bench_rank_thread_tradeoff.dir/bench_rank_thread_tradeoff.cpp.o"
  "CMakeFiles/bench_rank_thread_tradeoff.dir/bench_rank_thread_tradeoff.cpp.o.d"
  "bench_rank_thread_tradeoff"
  "bench_rank_thread_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rank_thread_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
