file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_compare.dir/bench_c2_compare.cpp.o"
  "CMakeFiles/bench_c2_compare.dir/bench_c2_compare.cpp.o.d"
  "bench_c2_compare"
  "bench_c2_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
