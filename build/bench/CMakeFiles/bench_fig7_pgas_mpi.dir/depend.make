# Empty dependencies file for bench_fig7_pgas_mpi.
# This may be replaced when dependencies are built.
