# Empty dependencies file for bench_fig4_weak.
# This may be replaced when dependencies are built.
