# Empty dependencies file for bench_pcc_compile.
# This may be replaced when dependencies are built.
