file(REMOVE_RECURSE
  "CMakeFiles/bench_pcc_compile.dir/bench_pcc_compile.cpp.o"
  "CMakeFiles/bench_pcc_compile.dir/bench_pcc_compile.cpp.o.d"
  "bench_pcc_compile"
  "bench_pcc_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pcc_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
