# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/compass" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_spec_info "sh" "-c" "/root/repo/build/tools/compass spec --macaque --cores 96 -o /root/repo/build/tools/smoke.co && /root/repo/build/tools/compass info /root/repo/build/tools/smoke.co")
set_tests_properties(cli_spec_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_roundtrip "sh" "-c" "/root/repo/build/tools/compass run --macaque --cores 77 --ranks 2 --ticks 20 --transport pgas --raster /root/repo/build/tools/smoke.rst --stats --energy && /root/repo/build/tools/compass analyze /root/repo/build/tools/smoke.rst")
set_tests_properties(cli_run_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/compass" "run" "--transport" "bogus")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
