file(REMOVE_RECURSE
  "CMakeFiles/compass_cli.dir/compass_cli.cpp.o"
  "CMakeFiles/compass_cli.dir/compass_cli.cpp.o.d"
  "compass"
  "compass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
