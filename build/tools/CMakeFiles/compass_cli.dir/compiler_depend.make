# Empty compiler generated dependencies file for compass_cli.
# This may be replaced when dependencies are built.
