file(REMOVE_RECURSE
  "CMakeFiles/primitives_zoo.dir/primitives_zoo.cpp.o"
  "CMakeFiles/primitives_zoo.dir/primitives_zoo.cpp.o.d"
  "primitives_zoo"
  "primitives_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primitives_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
