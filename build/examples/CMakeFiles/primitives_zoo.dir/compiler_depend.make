# Empty compiler generated dependencies file for primitives_zoo.
# This may be replaced when dependencies are built.
