file(REMOVE_RECURSE
  "CMakeFiles/macaque_demo.dir/macaque_demo.cpp.o"
  "CMakeFiles/macaque_demo.dir/macaque_demo.cpp.o.d"
  "macaque_demo"
  "macaque_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macaque_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
