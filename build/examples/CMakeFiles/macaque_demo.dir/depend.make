# Empty dependencies file for macaque_demo.
# This may be replaced when dependencies are built.
