# Empty compiler generated dependencies file for vision_apps.
# This may be replaced when dependencies are built.
