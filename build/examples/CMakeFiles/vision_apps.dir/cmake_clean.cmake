file(REMOVE_RECURSE
  "CMakeFiles/vision_apps.dir/vision_apps.cpp.o"
  "CMakeFiles/vision_apps.dir/vision_apps.cpp.o.d"
  "vision_apps"
  "vision_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
