file(REMOVE_RECURSE
  "CMakeFiles/realtime_explorer.dir/realtime_explorer.cpp.o"
  "CMakeFiles/realtime_explorer.dir/realtime_explorer.cpp.o.d"
  "realtime_explorer"
  "realtime_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
