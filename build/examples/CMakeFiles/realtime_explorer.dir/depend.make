# Empty dependencies file for realtime_explorer.
# This may be replaced when dependencies are built.
