
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/raster.cpp" "src/io/CMakeFiles/compass_io.dir/raster.cpp.o" "gcc" "src/io/CMakeFiles/compass_io.dir/raster.cpp.o.d"
  "/root/repo/src/io/spike_stats.cpp" "src/io/CMakeFiles/compass_io.dir/spike_stats.cpp.o" "gcc" "src/io/CMakeFiles/compass_io.dir/spike_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/compass_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
