# Empty dependencies file for compass_io.
# This may be replaced when dependencies are built.
