file(REMOVE_RECURSE
  "CMakeFiles/compass_io.dir/raster.cpp.o"
  "CMakeFiles/compass_io.dir/raster.cpp.o.d"
  "CMakeFiles/compass_io.dir/spike_stats.cpp.o"
  "CMakeFiles/compass_io.dir/spike_stats.cpp.o.d"
  "libcompass_io.a"
  "libcompass_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
