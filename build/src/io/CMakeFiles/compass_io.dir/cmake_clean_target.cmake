file(REMOVE_RECURSE
  "libcompass_io.a"
)
