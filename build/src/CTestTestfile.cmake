# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("arch")
subdirs("comm")
subdirs("perf")
subdirs("runtime")
subdirs("compiler")
subdirs("cocomac")
subdirs("primitives")
subdirs("c2")
subdirs("apps")
subdirs("io")
