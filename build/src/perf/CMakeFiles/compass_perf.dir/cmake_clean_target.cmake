file(REMOVE_RECURSE
  "libcompass_perf.a"
)
