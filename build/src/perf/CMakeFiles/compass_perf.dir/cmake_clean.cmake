file(REMOVE_RECURSE
  "CMakeFiles/compass_perf.dir/energy.cpp.o"
  "CMakeFiles/compass_perf.dir/energy.cpp.o.d"
  "CMakeFiles/compass_perf.dir/ledger.cpp.o"
  "CMakeFiles/compass_perf.dir/ledger.cpp.o.d"
  "libcompass_perf.a"
  "libcompass_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
