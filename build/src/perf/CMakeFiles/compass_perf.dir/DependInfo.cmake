
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/energy.cpp" "src/perf/CMakeFiles/compass_perf.dir/energy.cpp.o" "gcc" "src/perf/CMakeFiles/compass_perf.dir/energy.cpp.o.d"
  "/root/repo/src/perf/ledger.cpp" "src/perf/CMakeFiles/compass_perf.dir/ledger.cpp.o" "gcc" "src/perf/CMakeFiles/compass_perf.dir/ledger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/compass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
