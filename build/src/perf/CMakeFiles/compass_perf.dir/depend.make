# Empty dependencies file for compass_perf.
# This may be replaced when dependencies are built.
