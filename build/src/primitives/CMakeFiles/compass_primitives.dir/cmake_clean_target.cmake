file(REMOVE_RECURSE
  "libcompass_primitives.a"
)
