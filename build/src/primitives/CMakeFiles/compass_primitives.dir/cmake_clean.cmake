file(REMOVE_RECURSE
  "CMakeFiles/compass_primitives.dir/primitives.cpp.o"
  "CMakeFiles/compass_primitives.dir/primitives.cpp.o.d"
  "libcompass_primitives.a"
  "libcompass_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
