# Empty compiler generated dependencies file for compass_primitives.
# This may be replaced when dependencies are built.
