file(REMOVE_RECURSE
  "CMakeFiles/compass_arch.dir/core.cpp.o"
  "CMakeFiles/compass_arch.dir/core.cpp.o.d"
  "CMakeFiles/compass_arch.dir/crossbar.cpp.o"
  "CMakeFiles/compass_arch.dir/crossbar.cpp.o.d"
  "CMakeFiles/compass_arch.dir/model.cpp.o"
  "CMakeFiles/compass_arch.dir/model.cpp.o.d"
  "CMakeFiles/compass_arch.dir/neuron.cpp.o"
  "CMakeFiles/compass_arch.dir/neuron.cpp.o.d"
  "libcompass_arch.a"
  "libcompass_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
