# Empty compiler generated dependencies file for compass_arch.
# This may be replaced when dependencies are built.
