file(REMOVE_RECURSE
  "libcompass_arch.a"
)
