file(REMOVE_RECURSE
  "CMakeFiles/compass_apps.dir/classifier.cpp.o"
  "CMakeFiles/compass_apps.dir/classifier.cpp.o.d"
  "CMakeFiles/compass_apps.dir/motion.cpp.o"
  "CMakeFiles/compass_apps.dir/motion.cpp.o.d"
  "libcompass_apps.a"
  "libcompass_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
