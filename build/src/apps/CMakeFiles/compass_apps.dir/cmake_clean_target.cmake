file(REMOVE_RECURSE
  "libcompass_apps.a"
)
