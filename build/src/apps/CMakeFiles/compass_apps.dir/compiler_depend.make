# Empty compiler generated dependencies file for compass_apps.
# This may be replaced when dependencies are built.
