file(REMOVE_RECURSE
  "CMakeFiles/compass_runtime.dir/compass.cpp.o"
  "CMakeFiles/compass_runtime.dir/compass.cpp.o.d"
  "CMakeFiles/compass_runtime.dir/partition.cpp.o"
  "CMakeFiles/compass_runtime.dir/partition.cpp.o.d"
  "libcompass_runtime.a"
  "libcompass_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
