# Empty dependencies file for compass_runtime.
# This may be replaced when dependencies are built.
