file(REMOVE_RECURSE
  "libcompass_runtime.a"
)
