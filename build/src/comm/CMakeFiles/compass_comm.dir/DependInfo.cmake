
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/cost_model.cpp" "src/comm/CMakeFiles/compass_comm.dir/cost_model.cpp.o" "gcc" "src/comm/CMakeFiles/compass_comm.dir/cost_model.cpp.o.d"
  "/root/repo/src/comm/machine.cpp" "src/comm/CMakeFiles/compass_comm.dir/machine.cpp.o" "gcc" "src/comm/CMakeFiles/compass_comm.dir/machine.cpp.o.d"
  "/root/repo/src/comm/mpi_transport.cpp" "src/comm/CMakeFiles/compass_comm.dir/mpi_transport.cpp.o" "gcc" "src/comm/CMakeFiles/compass_comm.dir/mpi_transport.cpp.o.d"
  "/root/repo/src/comm/pgas_transport.cpp" "src/comm/CMakeFiles/compass_comm.dir/pgas_transport.cpp.o" "gcc" "src/comm/CMakeFiles/compass_comm.dir/pgas_transport.cpp.o.d"
  "/root/repo/src/comm/torus.cpp" "src/comm/CMakeFiles/compass_comm.dir/torus.cpp.o" "gcc" "src/comm/CMakeFiles/compass_comm.dir/torus.cpp.o.d"
  "/root/repo/src/comm/transport.cpp" "src/comm/CMakeFiles/compass_comm.dir/transport.cpp.o" "gcc" "src/comm/CMakeFiles/compass_comm.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/compass_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
