file(REMOVE_RECURSE
  "CMakeFiles/compass_comm.dir/cost_model.cpp.o"
  "CMakeFiles/compass_comm.dir/cost_model.cpp.o.d"
  "CMakeFiles/compass_comm.dir/machine.cpp.o"
  "CMakeFiles/compass_comm.dir/machine.cpp.o.d"
  "CMakeFiles/compass_comm.dir/mpi_transport.cpp.o"
  "CMakeFiles/compass_comm.dir/mpi_transport.cpp.o.d"
  "CMakeFiles/compass_comm.dir/pgas_transport.cpp.o"
  "CMakeFiles/compass_comm.dir/pgas_transport.cpp.o.d"
  "CMakeFiles/compass_comm.dir/torus.cpp.o"
  "CMakeFiles/compass_comm.dir/torus.cpp.o.d"
  "CMakeFiles/compass_comm.dir/transport.cpp.o"
  "CMakeFiles/compass_comm.dir/transport.cpp.o.d"
  "libcompass_comm.a"
  "libcompass_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
