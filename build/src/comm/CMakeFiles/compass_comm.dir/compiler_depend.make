# Empty compiler generated dependencies file for compass_comm.
# This may be replaced when dependencies are built.
