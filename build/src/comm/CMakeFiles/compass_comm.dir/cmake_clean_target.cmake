file(REMOVE_RECURSE
  "libcompass_comm.a"
)
