file(REMOVE_RECURSE
  "libcompass_cocomac.a"
)
