# Empty dependencies file for compass_cocomac.
# This may be replaced when dependencies are built.
