
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cocomac/graph.cpp" "src/cocomac/CMakeFiles/compass_cocomac.dir/graph.cpp.o" "gcc" "src/cocomac/CMakeFiles/compass_cocomac.dir/graph.cpp.o.d"
  "/root/repo/src/cocomac/macaque.cpp" "src/cocomac/CMakeFiles/compass_cocomac.dir/macaque.cpp.o" "gcc" "src/cocomac/CMakeFiles/compass_cocomac.dir/macaque.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/compass_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compass_util.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/compass_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/compass_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/compass_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/compass_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
