file(REMOVE_RECURSE
  "CMakeFiles/compass_cocomac.dir/graph.cpp.o"
  "CMakeFiles/compass_cocomac.dir/graph.cpp.o.d"
  "CMakeFiles/compass_cocomac.dir/macaque.cpp.o"
  "CMakeFiles/compass_cocomac.dir/macaque.cpp.o.d"
  "libcompass_cocomac.a"
  "libcompass_cocomac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_cocomac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
