file(REMOVE_RECURSE
  "CMakeFiles/compass_c2.dir/izhikevich.cpp.o"
  "CMakeFiles/compass_c2.dir/izhikevich.cpp.o.d"
  "CMakeFiles/compass_c2.dir/network.cpp.o"
  "CMakeFiles/compass_c2.dir/network.cpp.o.d"
  "CMakeFiles/compass_c2.dir/simulator.cpp.o"
  "CMakeFiles/compass_c2.dir/simulator.cpp.o.d"
  "libcompass_c2.a"
  "libcompass_c2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_c2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
