file(REMOVE_RECURSE
  "libcompass_c2.a"
)
