src/c2/CMakeFiles/compass_c2.dir/izhikevich.cpp.o: \
 /root/repo/src/c2/izhikevich.cpp /usr/include/stdc-predef.h \
 /root/repo/src/c2/../c2/izhikevich.h
