# Empty compiler generated dependencies file for compass_c2.
# This may be replaced when dependencies are built.
