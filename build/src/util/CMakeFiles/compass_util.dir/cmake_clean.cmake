file(REMOVE_RECURSE
  "CMakeFiles/compass_util.dir/log.cpp.o"
  "CMakeFiles/compass_util.dir/log.cpp.o.d"
  "CMakeFiles/compass_util.dir/prng.cpp.o"
  "CMakeFiles/compass_util.dir/prng.cpp.o.d"
  "CMakeFiles/compass_util.dir/stats.cpp.o"
  "CMakeFiles/compass_util.dir/stats.cpp.o.d"
  "CMakeFiles/compass_util.dir/table.cpp.o"
  "CMakeFiles/compass_util.dir/table.cpp.o.d"
  "libcompass_util.a"
  "libcompass_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
