# Empty dependencies file for compass_compiler.
# This may be replaced when dependencies are built.
