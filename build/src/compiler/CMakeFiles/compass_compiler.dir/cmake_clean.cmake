file(REMOVE_RECURSE
  "CMakeFiles/compass_compiler.dir/coreobject.cpp.o"
  "CMakeFiles/compass_compiler.dir/coreobject.cpp.o.d"
  "CMakeFiles/compass_compiler.dir/ipfp.cpp.o"
  "CMakeFiles/compass_compiler.dir/ipfp.cpp.o.d"
  "CMakeFiles/compass_compiler.dir/pcc.cpp.o"
  "CMakeFiles/compass_compiler.dir/pcc.cpp.o.d"
  "libcompass_compiler.a"
  "libcompass_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
