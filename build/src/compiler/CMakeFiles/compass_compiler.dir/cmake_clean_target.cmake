file(REMOVE_RECURSE
  "libcompass_compiler.a"
)
