# Empty compiler generated dependencies file for test_pcc.
# This may be replaced when dependencies are built.
