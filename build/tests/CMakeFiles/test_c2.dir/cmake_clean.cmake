file(REMOVE_RECURSE
  "CMakeFiles/test_c2.dir/test_c2.cpp.o"
  "CMakeFiles/test_c2.dir/test_c2.cpp.o.d"
  "test_c2"
  "test_c2.pdb"
  "test_c2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_c2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
