# Empty dependencies file for test_c2.
# This may be replaced when dependencies are built.
