
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cocomac.cpp" "tests/CMakeFiles/test_cocomac.dir/test_cocomac.cpp.o" "gcc" "tests/CMakeFiles/test_cocomac.dir/test_cocomac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cocomac/CMakeFiles/compass_cocomac.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/compass_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/c2/CMakeFiles/compass_c2.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/compass_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/compass_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/compass_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/compass_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/compass_primitives.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/compass_io.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/compass_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
