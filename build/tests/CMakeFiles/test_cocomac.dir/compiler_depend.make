# Empty compiler generated dependencies file for test_cocomac.
# This may be replaced when dependencies are built.
