file(REMOVE_RECURSE
  "CMakeFiles/test_cocomac.dir/test_cocomac.cpp.o"
  "CMakeFiles/test_cocomac.dir/test_cocomac.cpp.o.d"
  "test_cocomac"
  "test_cocomac.pdb"
  "test_cocomac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cocomac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
