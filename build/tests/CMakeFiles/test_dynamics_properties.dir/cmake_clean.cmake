file(REMOVE_RECURSE
  "CMakeFiles/test_dynamics_properties.dir/test_dynamics_properties.cpp.o"
  "CMakeFiles/test_dynamics_properties.dir/test_dynamics_properties.cpp.o.d"
  "test_dynamics_properties"
  "test_dynamics_properties.pdb"
  "test_dynamics_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamics_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
