# Empty compiler generated dependencies file for test_ipfp.
# This may be replaced when dependencies are built.
