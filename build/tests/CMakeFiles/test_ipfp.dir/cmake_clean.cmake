file(REMOVE_RECURSE
  "CMakeFiles/test_ipfp.dir/test_ipfp.cpp.o"
  "CMakeFiles/test_ipfp.dir/test_ipfp.cpp.o.d"
  "test_ipfp"
  "test_ipfp.pdb"
  "test_ipfp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
