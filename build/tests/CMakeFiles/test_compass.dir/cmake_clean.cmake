file(REMOVE_RECURSE
  "CMakeFiles/test_compass.dir/test_compass.cpp.o"
  "CMakeFiles/test_compass.dir/test_compass.cpp.o.d"
  "test_compass"
  "test_compass.pdb"
  "test_compass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
