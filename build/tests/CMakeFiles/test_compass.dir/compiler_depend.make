# Empty compiler generated dependencies file for test_compass.
# This may be replaced when dependencies are built.
