file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_exec.dir/test_parallel_exec.cpp.o"
  "CMakeFiles/test_parallel_exec.dir/test_parallel_exec.cpp.o.d"
  "test_parallel_exec"
  "test_parallel_exec.pdb"
  "test_parallel_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
