file(REMOVE_RECURSE
  "CMakeFiles/test_perf_ledger.dir/test_perf_ledger.cpp.o"
  "CMakeFiles/test_perf_ledger.dir/test_perf_ledger.cpp.o.d"
  "test_perf_ledger"
  "test_perf_ledger.pdb"
  "test_perf_ledger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
