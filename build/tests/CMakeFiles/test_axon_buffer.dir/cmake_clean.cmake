file(REMOVE_RECURSE
  "CMakeFiles/test_axon_buffer.dir/test_axon_buffer.cpp.o"
  "CMakeFiles/test_axon_buffer.dir/test_axon_buffer.cpp.o.d"
  "test_axon_buffer"
  "test_axon_buffer.pdb"
  "test_axon_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_axon_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
