# Empty compiler generated dependencies file for test_axon_buffer.
# This may be replaced when dependencies are built.
