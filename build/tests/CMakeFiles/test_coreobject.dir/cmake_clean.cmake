file(REMOVE_RECURSE
  "CMakeFiles/test_coreobject.dir/test_coreobject.cpp.o"
  "CMakeFiles/test_coreobject.dir/test_coreobject.cpp.o.d"
  "test_coreobject"
  "test_coreobject.pdb"
  "test_coreobject[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coreobject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
