# Empty compiler generated dependencies file for test_coreobject.
# This may be replaced when dependencies are built.
